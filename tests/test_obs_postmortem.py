"""``repro obs postmortem``: renderer + the injected-crash e2e contract."""

import io
import json

import pytest

from repro.cga import CGAConfig, StopCondition
from repro.obs import Observer
from repro.obs.flight import FlightRecorder, flight_paths, write_postmortem
from repro.obs.postmortem import (
    DEFAULT_EVENTS,
    load_postmortems,
    load_stack_dumps,
    postmortem,
    render_postmortem,
)

CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=2, seed_with_minmin=False)


def _fake_crashed_bundle(root):
    """A hand-built partial bundle: ring + postmortem + resources."""
    (root / "meta.json").write_text(
        json.dumps(
            {
                "engine": "shm",
                "instance": "tiny",
                "seed": 0,
                "interrupted": {"type": "RuntimeError", "message": "workers failed"},
                "interrupted_by": {"role": "w1", "pid": 4242, "exitcode": 1},
            }
        )
    )
    ring = FlightRecorder(flight_paths(root, "w1")["ring"], slots=8, epoch_unix=0.0)
    ring.record("sweep", "pubs=2", 3.0)
    ring.record("crash", "RuntimeError: boom")
    ring.close()
    try:
        raise RuntimeError("boom")
    except RuntimeError as exc:
        write_postmortem(root, "w1", exc, resources={"rss_mb": 33.5, "fds": 9})
    (root / "resources.jsonl").write_text(
        json.dumps({"t_s": 0.1, "role": "main", "rss_mb": 50.0, "fds": 12}) + "\n"
    )
    return root


class TestRenderer:
    def test_full_report_sections(self, tmp_path):
        report = render_postmortem(_fake_crashed_bundle(tmp_path))
        assert "interrupted : RuntimeError: workers failed" in report
        assert "raised by   : role=w1  pid=4242  exitcode=1" in report
        assert "== crashed w1" in report
        assert "RuntimeError: boom" in report
        assert "final resources: rss 33.5MB  fds 9" in report
        assert "== flight ring w1" in report
        assert "sweep" in report and "pubs=2" in report
        assert "== resources:" in report
        assert "peak_rss_mb 50" in report

    def test_partial_bundle_renders_absences(self, tmp_path):
        (tmp_path / "flight").mkdir()
        ring = FlightRecorder(flight_paths(tmp_path, "w0")["ring"], slots=4)
        ring.record("sweep")
        ring.close()
        report = render_postmortem(tmp_path)
        assert "meta.json   : absent (run never finalized)" in report
        assert "no worker post-mortem records" in report
        assert "no resource rows" in report
        assert "== flight ring w0" in report

    def test_last_events_limit(self, tmp_path):
        ring = FlightRecorder(flight_paths(tmp_path, "main")["ring"], slots=64)
        for i in range(30):
            ring.record("sweep", value=float(i))
        ring.close()
        report = render_postmortem(tmp_path, last_events=5)
        assert "30 retained event(s), last 5 shown" in report
        assert "#29" in report and "#24 " not in report

    def test_default_event_count(self):
        assert DEFAULT_EVENTS == 12


class TestLoaders:
    def test_load_postmortems_skips_bad_json(self, tmp_path):
        _fake_crashed_bundle(tmp_path)
        (tmp_path / "flight" / "postmortem-w9.json").write_text("{not json")
        records = load_postmortems(tmp_path)
        assert [r["role"] for r in records] == ["w1"]

    def test_load_stack_dumps_role_keys(self, tmp_path):
        flight = tmp_path / "flight"
        flight.mkdir()
        (flight / "stacks-main.txt").write_text("=== stack dump pid=1\n")
        (flight / "stacks-w0.txt").write_text("=== stack dump pid=2\n")
        assert set(load_stack_dumps(tmp_path)) == {"main", "w0"}


class TestCliEntry:
    def test_exit_1_on_non_bundle(self, tmp_path):
        out = io.StringIO()
        assert postmortem(tmp_path / "missing", out=out) == 1
        assert postmortem(tmp_path, out=out) == 1  # empty dir: no artifacts
        assert "error:" in out.getvalue()

    def test_exit_0_on_partial_bundle(self, tmp_path):
        (tmp_path / "resources.jsonl").write_text(
            json.dumps({"role": "main", "rss_mb": 1.0}) + "\n"
        )
        out = io.StringIO()
        assert postmortem(tmp_path, out=out) == 0
        assert "postmortem:" in out.getvalue()


class TestInjectedCrashE2E:
    """Acceptance criterion: an injected mid-run worker crash in the shm
    engine yields a bundle from which the postmortem renders the failing
    worker's stack, last flight events, and final resource sample."""

    def test_shm_worker_crash_postmortem(self, tiny_instance, tmp_path, monkeypatch):
        from repro.parallel import ShmBlockPACGA

        monkeypatch.setenv("REPRO_SHM_CRASH_WORKER", "1")
        monkeypatch.setenv("REPRO_SHM_CRASH_AFTER", "2")
        out = tmp_path / "bundle"
        obs = Observer(
            out=out,
            sample_every_evals=10**9,
            flight=True,
            resources=True,
            resource_every_s=0.05,
            stack_sample_s=0.005,
        )
        # oversubscribe: the crash must land in worker 1's *own* forked
        # process even on a single-core box (no worker collapse)
        eng = ShmBlockPACGA(
            tiny_instance,
            CFG.with_(n_threads=2),
            seed=0,
            obs=obs,
            lockstep=False,
            oversubscribe=True,
        )
        try:
            with pytest.raises(RuntimeError, match="shm workers failed"):
                with obs:
                    eng.run(StopCondition(max_generations=50))
        finally:
            eng._arena.unlink()

        # who failed: the engine stamped the worker, not the main process
        meta = json.loads((out / "meta.json").read_text())
        assert meta["interrupted"]["type"] == "RuntimeError"
        assert meta["interrupted_by"]["role"] == "w1"
        assert meta["interrupted_by"]["exitcode"] == 1
        assert meta["interrupted_by"]["pid"] > 0

        # the crashed worker's own post-mortem record
        records = {r["role"]: r for r in load_postmortems(out)}
        assert "w1" in records
        exc = records["w1"]["exception"]
        assert exc["type"] == "RuntimeError"
        assert "injected crash" in exc["message"]
        assert records["w1"]["resources"] is not None  # final sample attached

        # and the rendered report carries stack + events + resources
        report = render_postmortem(out)
        assert "== crashed w1" in report
        assert "injected crash in shm worker 1" in report
        assert "final resources: rss" in report
        assert "== flight ring w1" in report
        assert "sweep" in report
        assert "crash" in report
        assert "== resources:" in report
        out_stream = io.StringIO()
        assert postmortem(out, out=out_stream) == 0

    def test_clean_shm_run_bundle_has_process_artifacts(
        self, tiny_instance, tmp_path
    ):
        from repro.parallel import ShmBlockPACGA

        out = tmp_path / "bundle"
        obs = Observer(
            out=out,
            sample_every_evals=10**9,
            flight=True,
            resources=True,
            resource_every_s=0.05,
            stack_sample_s=0.005,
        )
        # oversubscribe: one flight ring / resource stream per logical
        # worker requires one forked process per block
        eng = ShmBlockPACGA(
            tiny_instance,
            CFG.with_(n_threads=2),
            seed=0,
            obs=obs,
            lockstep=False,
            oversubscribe=True,
        )
        with obs:
            eng.run(StopCondition(max_generations=4))

        # one ring per process, all readable; no post-mortem records
        from repro.obs.flight import load_flight_dir

        rings = load_flight_dir(out)
        assert set(rings) == {"main", "w0", "w1"}
        assert any(e["kind"] == "sweep" for e in rings["w0"])
        assert rings["w0"][-1]["kind"] == "budget.done"
        assert load_postmortems(out) == []

        # per-worker resources + merged samples made it into the bundle
        from repro.obs.resources import load_resource_rows

        roles = {r["role"] for r in load_resource_rows(out)}
        assert {"main", "w0", "w1"} <= roles
        meta = json.loads((out / "meta.json").read_text())
        assert meta["resources"]["peak_rss_mb"] > 0
        assert (out / "samples.collapsed").exists()
        assert meta["n_stack_samples"] > 0

"""Tests for the ETC matrix model."""

import numpy as np
import pytest

from repro.etc import Consistency, ETCMatrix, make_instance


def mat(rows):
    return np.asarray(rows, dtype=np.float64)


class TestConstruction:
    def test_basic_shape(self):
        m = ETCMatrix(mat([[1, 2], [3, 4], [5, 6]]))
        assert m.ntasks == 3
        assert m.nmachines == 2

    def test_transposed_layout(self):
        m = ETCMatrix(mat([[1, 2], [3, 4]]))
        assert np.array_equal(m.etc_t, m.etc.T)
        assert m.etc_t.flags["C_CONTIGUOUS"]

    def test_default_ready_times_zero(self):
        m = ETCMatrix(mat([[1, 2]]))
        assert np.array_equal(m.ready_times, [0.0, 0.0])

    def test_custom_ready_times(self):
        m = ETCMatrix(mat([[1, 2]]), ready_times=np.array([5.0, 0.5]))
        assert m.ready_times[0] == 5.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            ETCMatrix(np.array([1.0, 2.0]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            ETCMatrix(mat([[1, 0]]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ETCMatrix(mat([[1, np.nan]]))

    def test_rejects_bad_ready_shape(self):
        with pytest.raises(ValueError, match="ready_times"):
            ETCMatrix(mat([[1, 2]]), ready_times=np.array([1.0]))

    def test_rejects_negative_ready(self):
        with pytest.raises(ValueError, match="ready_times"):
            ETCMatrix(mat([[1, 2]]), ready_times=np.array([-1.0, 0.0]))

    def test_pj_bounds(self):
        m = ETCMatrix(mat([[3, 9], [1, 27]]))
        assert m.pj_min == 1.0
        assert m.pj_max == 27.0


class TestConsistency:
    def test_consistent_matrix(self):
        m = ETCMatrix(mat([[1, 2, 3], [4, 5, 6]]))
        assert m.consistency() is Consistency.CONSISTENT

    def test_consistent_with_permuted_columns(self):
        # machine ordering identical for all tasks, but columns shuffled
        m = ETCMatrix(mat([[3, 1, 2], [6, 4, 5]]))
        assert m.consistency() is Consistency.CONSISTENT

    def test_inconsistent_matrix(self):
        m = ETCMatrix(mat([[1, 2], [2, 1]]))
        assert m.consistency() is Consistency.INCONSISTENT

    def test_semi_consistent_matrix(self):
        # even columns (0, 2) consistent; odd column breaks full consistency
        m = ETCMatrix(mat([[1, 100, 2], [3, 0.5, 4]]))
        assert m.consistency() is Consistency.SEMI_CONSISTENT

    def test_generated_classes(self):
        for c in ("c", "i", "s"):
            inst = make_instance(64, 8, consistency=c, seed=3)
            got = inst.consistency()
            if c == "c":
                assert got is Consistency.CONSISTENT
            elif c == "s":
                assert got in (Consistency.SEMI_CONSISTENT, Consistency.CONSISTENT)
            else:
                assert got is Consistency.INCONSISTENT


class TestMetrics:
    def test_heterogeneity_ordering(self):
        hi = make_instance(128, 8, task_het="hi", machine_het="hi", seed=5)
        lo = make_instance(128, 8, task_het="lo", machine_het="lo", seed=5)
        assert hi.task_heterogeneity() > 0
        assert lo.machine_heterogeneity() < hi.machine_heterogeneity() * 3

    def test_blazewicz_env_letter(self):
        c = make_instance(32, 4, consistency="c", seed=1)
        i = make_instance(32, 4, consistency="i", seed=1)
        assert c.blazewicz_notation().startswith("Q4|")
        assert i.blazewicz_notation().startswith("R4|")

    def test_makespan_lower_bound_positive(self, small_instance):
        lb = small_instance.makespan_lower_bound()
        assert lb > 0

    def test_lower_bound_at_least_longest_best_task(self, small_instance):
        best = small_instance.etc.min(axis=1)
        assert small_instance.makespan_lower_bound() >= best.max()


class TestEquality:
    def test_equal_matrices(self):
        a = ETCMatrix(mat([[1, 2]]), name="x")
        b = ETCMatrix(mat([[1, 2]]), name="y")
        assert a == b  # name does not affect equality

    def test_unequal_values(self):
        assert ETCMatrix(mat([[1, 2]])) != ETCMatrix(mat([[1, 3]]))

    def test_unequal_ready_times(self):
        a = ETCMatrix(mat([[1, 2]]))
        b = ETCMatrix(mat([[1, 2]]), ready_times=np.array([1.0, 0.0]))
        assert a != b

    def test_repr_mentions_name_and_shape(self):
        m = ETCMatrix(mat([[1, 2]]), name="demo")
        assert "demo" in repr(m)
        assert "1x2" in repr(m)

"""Tests for the CVB (coefficient-of-variation-based) ETC generator."""

import numpy as np
import pytest

from repro.etc.generator import CVBSpec, generate_etc_cvb
from repro.etc.model import Consistency


class TestSpecValidation:
    def test_defaults(self):
        spec = CVBSpec()
        assert spec.ntasks == 512
        assert spec.nmachines == 16

    def test_rejects_bad_cov(self):
        with pytest.raises(ValueError):
            CVBSpec(v_task=0.0)
        with pytest.raises(ValueError):
            CVBSpec(v_machine=-0.5)

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            CVBSpec(mean_task=0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CVBSpec(ntasks=0)


class TestGeneration:
    def test_shape_and_positivity(self):
        m = generate_etc_cvb(CVBSpec(ntasks=40, nmachines=5), rng=0)
        assert m.etc.shape == (40, 5)
        assert m.pj_min > 0

    def test_deterministic(self):
        a = generate_etc_cvb(CVBSpec(ntasks=10, nmachines=3), rng=4)
        b = generate_etc_cvb(CVBSpec(ntasks=10, nmachines=3), rng=4)
        assert np.array_equal(a.etc, b.etc)

    def test_mean_controlled(self):
        spec = CVBSpec(ntasks=4000, nmachines=8, mean_task=500.0, v_task=0.3, v_machine=0.3)
        m = generate_etc_cvb(spec, rng=1)
        assert m.etc.mean() == pytest.approx(500.0, rel=0.05)

    def test_heterogeneity_tracks_cov(self):
        lo = generate_etc_cvb(
            CVBSpec(ntasks=1500, nmachines=8, v_task=0.1, v_machine=0.1), rng=2
        )
        hi = generate_etc_cvb(
            CVBSpec(ntasks=1500, nmachines=8, v_task=0.8, v_machine=0.8), rng=2
        )
        assert hi.machine_heterogeneity() > 3 * lo.machine_heterogeneity()
        assert hi.task_heterogeneity() > 3 * lo.task_heterogeneity()

    def test_consistency_classes(self):
        c = generate_etc_cvb(
            CVBSpec(ntasks=50, nmachines=6, consistency=Consistency.CONSISTENT), rng=0
        )
        assert c.is_consistent()
        s = generate_etc_cvb(
            CVBSpec(ntasks=50, nmachines=6, consistency=Consistency.SEMI_CONSISTENT),
            rng=0,
        )
        assert s.is_semi_consistent()

    def test_name_attached(self):
        m = generate_etc_cvb(CVBSpec(ntasks=4, nmachines=2), rng=0, name="cvb-demo")
        assert m.name == "cvb-demo"

    def test_usable_by_scheduler(self):
        from repro.heuristics import min_min

        m = generate_etc_cvb(CVBSpec(ntasks=60, nmachines=6), rng=3)
        sched = min_min(m)
        assert sched.makespan() >= m.makespan_lower_bound()

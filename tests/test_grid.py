"""Tests for the toroidal grid and block partitioning."""

import numpy as np
import pytest

from repro.cga import Grid2D, neighbor_table


class TestGeometry:
    def test_size(self):
        assert Grid2D(16, 16).size == 256

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Grid2D(0, 4)

    def test_coords_roundtrip(self):
        g = Grid2D(4, 5)
        for idx in range(g.size):
            r, c = g.coords(idx)
            assert g.index(r, c) == idx

    def test_index_wraps_toroidally(self):
        g = Grid2D(4, 5)
        assert g.index(-1, 0) == g.index(3, 0)
        assert g.index(0, -1) == g.index(0, 4)
        assert g.index(4, 5) == g.index(0, 0)

    def test_manhattan_adjacent(self):
        g = Grid2D(4, 4)
        assert g.manhattan(0, 1) == 1
        assert g.manhattan(0, 4) == 1

    def test_manhattan_wraparound_shortcut(self):
        g = Grid2D(4, 4)
        # cell 0 and cell 3 are 1 apart through the torus seam
        assert g.manhattan(0, 3) == 1
        # opposite corners: 2 + 2
        assert g.manhattan(0, 10) == 4

    def test_manhattan_symmetric(self):
        g = Grid2D(5, 7)
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = rng.integers(0, g.size, 2)
            assert g.manhattan(int(a), int(b)) == g.manhattan(int(b), int(a))


class TestPartition:
    def test_single_block_is_everything(self):
        g = Grid2D(4, 4)
        blocks = g.partition(1)
        assert len(blocks) == 1
        assert np.array_equal(blocks[0], np.arange(16))

    def test_blocks_are_contiguous_and_cover(self):
        g = Grid2D(16, 16)
        for n in (2, 3, 4, 5, 7):
            blocks = g.partition(n)
            assert len(blocks) == n
            joined = np.concatenate(blocks)
            assert np.array_equal(joined, np.arange(g.size))
            for b in blocks:
                assert np.array_equal(b, np.arange(b[0], b[-1] + 1))

    def test_sizes_similar(self):
        g = Grid2D(16, 16)
        sizes = [len(b) for b in g.partition(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_paper_partition_shape(self):
        # Fig. 2 of the paper: 8x8 over 4 threads = 16 cells each
        g = Grid2D(8, 8)
        blocks = g.partition(4)
        assert all(len(b) == 16 for b in blocks)

    def test_rejects_bad_counts(self):
        g = Grid2D(4, 4)
        with pytest.raises(ValueError):
            g.partition(0)
        with pytest.raises(ValueError):
            g.partition(17)

    def test_block_of(self):
        g = Grid2D(16, 16)
        blocks = g.partition(4)
        for bid, block in enumerate(blocks):
            for idx in (block[0], block[-1]):
                assert g.block_of(4, int(idx)) == bid


class TestBoundaryFraction:
    def test_zero_for_single_block(self):
        g = Grid2D(16, 16)
        tbl = neighbor_table(g, "l5")
        assert g.boundary_fraction(1, tbl) == 0.0

    def test_grows_with_blocks(self):
        g = Grid2D(16, 16)
        tbl = neighbor_table(g, "l5")
        fracs = [g.boundary_fraction(n, tbl) for n in (2, 3, 4)]
        assert fracs[0] < fracs[1] < fracs[2]

    def test_exact_for_row_aligned_blocks(self):
        # 16x16 over 4 threads: blocks are 4 whole rows; the first and
        # last row of each block cross (L5 reaches +/-1 row) = 32 of 64
        g = Grid2D(16, 16)
        tbl = neighbor_table(g, "l5")
        assert g.boundary_fraction(4, tbl) == pytest.approx(0.5)

    def test_everything_crosses_when_blocks_tiny(self):
        g = Grid2D(4, 4)
        tbl = neighbor_table(g, "l5")
        assert g.boundary_fraction(16, tbl) == 1.0

"""Tests for the engine lifecycle hooks (and the legacy bare-callable
``on_generation`` compatibility path)."""

import pytest

from repro.cga import AsyncCGA, CGAConfig, EngineHooks, StopCondition, SyncCGA, as_hooks
from repro.cga.diversity import diversity_report
from repro.cga.engine import RunResult


CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False)


class TestOnGeneration:
    def test_called_once_per_generation(self, tiny_instance):
        calls = []
        eng = AsyncCGA(
            tiny_instance, CFG, rng=0,
            on_generation=lambda e, g, ev: calls.append((g, ev)),
        )
        eng.run(StopCondition(max_generations=5))
        assert [g for g, _ in calls] == [1, 2, 3, 4, 5]
        assert calls[-1][1] == 5 * 16

    def test_not_called_for_initial_snapshot(self, tiny_instance):
        calls = []
        eng = AsyncCGA(
            tiny_instance, CFG, rng=0,
            on_generation=lambda e, g, ev: calls.append(g),
        )
        eng.run(StopCondition(max_generations=1))
        assert calls == [1]

    def test_receives_live_engine(self, tiny_instance):
        traces = []
        eng = AsyncCGA(
            tiny_instance, CFG, rng=0,
            on_generation=lambda e, g, ev: traces.append(
                diversity_report(e.pop)["hamming"]
            ),
        )
        eng.run(StopCondition(max_generations=4))
        assert len(traces) == 4
        assert all(0.0 <= t <= 1.0 for t in traces)

    def test_works_on_sync_engine(self, tiny_instance):
        calls = []
        eng = SyncCGA(
            tiny_instance, CFG, rng=0,
            on_generation=lambda e, g, ev: calls.append(g),
        )
        eng.run(StopCondition(max_generations=3))
        assert calls == [1, 2, 3]

    def test_hook_can_mutate_schedule_of_search(self, tiny_instance):
        # a hook that plants an immigrant each generation (hybrid usage)
        from repro.heuristics import min_min

        seed = min_min(tiny_instance)

        def immigrant(engine, gen, evals):
            engine.pop.write_individual(0, seed.s.copy(), seed.ct.copy(), seed.makespan())

        eng = AsyncCGA(tiny_instance, CFG, rng=0, on_generation=immigrant)
        eng.run(StopCondition(max_generations=3))
        eng.pop.check_invariants()
        assert eng.pop.fitness.min() <= seed.makespan()

    def test_none_hook_is_default(self, tiny_instance):
        eng = AsyncCGA(tiny_instance, CFG, rng=0)
        assert eng.on_generation is None
        eng.run(StopCondition(max_generations=1))


class TestAsHooks:
    def test_none_gives_empty_hooks(self):
        hooks = as_hooks(None)
        assert hooks.on_generation is None
        assert hooks.on_improvement is None
        assert hooks.on_stop is None

    def test_callable_becomes_on_generation(self):
        def f(e, g, ev):
            return None
        hooks = as_hooks(f)
        assert hooks.on_generation is f
        assert hooks.on_stop is None

    def test_hooks_pass_through_unchanged(self):
        hooks = EngineHooks(on_stop=lambda e, r: None)
        assert as_hooks(hooks) is hooks

    def test_rejects_non_callables(self):
        with pytest.raises(TypeError):
            as_hooks(42)


class TestHookProtocol:
    def test_all_three_hooks_fire(self, tiny_instance):
        events = {"gen": [], "improved": [], "stopped": []}
        hooks = EngineHooks(
            on_generation=lambda e, g, ev: events["gen"].append(g),
            on_improvement=lambda e, g, ev, best: events["improved"].append(best),
            on_stop=lambda e, r: events["stopped"].append(r),
        )
        eng = AsyncCGA(tiny_instance, CFG, rng=0, on_generation=hooks)
        res = eng.run(StopCondition(max_generations=5))
        assert events["gen"] == [1, 2, 3, 4, 5]
        # an improvement event carries the new strictly-better best
        bests = events["improved"]
        assert bests == sorted(bests, reverse=True)
        assert len(set(bests)) == len(bests)
        # on_stop fires exactly once, with the returned result
        assert len(events["stopped"]) == 1
        assert events["stopped"][0] is res
        assert isinstance(res, RunResult)

    def test_improvement_not_fired_for_initial_snapshot(self, tiny_instance):
        improved = []
        hooks = EngineHooks(
            on_improvement=lambda e, g, ev, best: improved.append((g, best))
        )
        eng = AsyncCGA(tiny_instance, CFG, rng=0, on_generation=hooks)
        eng.run(StopCondition(max_generations=3))
        assert all(g >= 1 for g, _ in improved)

    def test_on_generation_property_setter(self, tiny_instance):
        # legacy attribute assignment after construction still works
        eng = AsyncCGA(tiny_instance, CFG, rng=0)
        calls = []
        eng.on_generation = lambda e, g, ev: calls.append(g)
        assert eng.on_generation is not None
        eng.run(StopCondition(max_generations=2))
        assert calls == [1, 2]

    def test_works_on_sync_engine(self, tiny_instance):
        stopped = []
        hooks = EngineHooks(on_stop=lambda e, r: stopped.append(r.generations))
        eng = SyncCGA(tiny_instance, CFG, rng=0, on_generation=hooks)
        eng.run(StopCondition(max_generations=2))
        assert stopped == [2]

"""Tests for the per-generation engine hook."""

import pytest

from repro.cga import AsyncCGA, CGAConfig, StopCondition, SyncCGA
from repro.cga.diversity import diversity_report


CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False)


class TestOnGeneration:
    def test_called_once_per_generation(self, tiny_instance):
        calls = []
        eng = AsyncCGA(
            tiny_instance, CFG, rng=0,
            on_generation=lambda e, g, ev: calls.append((g, ev)),
        )
        eng.run(StopCondition(max_generations=5))
        assert [g for g, _ in calls] == [1, 2, 3, 4, 5]
        assert calls[-1][1] == 5 * 16

    def test_not_called_for_initial_snapshot(self, tiny_instance):
        calls = []
        eng = AsyncCGA(
            tiny_instance, CFG, rng=0,
            on_generation=lambda e, g, ev: calls.append(g),
        )
        eng.run(StopCondition(max_generations=1))
        assert calls == [1]

    def test_receives_live_engine(self, tiny_instance):
        traces = []
        eng = AsyncCGA(
            tiny_instance, CFG, rng=0,
            on_generation=lambda e, g, ev: traces.append(
                diversity_report(e.pop)["hamming"]
            ),
        )
        eng.run(StopCondition(max_generations=4))
        assert len(traces) == 4
        assert all(0.0 <= t <= 1.0 for t in traces)

    def test_works_on_sync_engine(self, tiny_instance):
        calls = []
        eng = SyncCGA(
            tiny_instance, CFG, rng=0,
            on_generation=lambda e, g, ev: calls.append(g),
        )
        eng.run(StopCondition(max_generations=3))
        assert calls == [1, 2, 3]

    def test_hook_can_mutate_schedule_of_search(self, tiny_instance):
        # a hook that plants an immigrant each generation (hybrid usage)
        from repro.heuristics import min_min

        seed = min_min(tiny_instance)

        def immigrant(engine, gen, evals):
            engine.pop.write_individual(0, seed.s.copy(), seed.ct.copy(), seed.makespan())

        eng = AsyncCGA(tiny_instance, CFG, rng=0, on_generation=immigrant)
        eng.run(StopCondition(max_generations=3))
        eng.pop.check_invariants()
        assert eng.pop.fitness.min() <= seed.makespan()

    def test_none_hook_is_default(self, tiny_instance):
        eng = AsyncCGA(tiny_instance, CFG, rng=0)
        assert eng.on_generation is None
        eng.run(StopCondition(max_generations=1))

"""Tests for the thread-parallel PA-CGA engine.

These run real OS threads: the point is correctness under genuine
concurrency — the per-individual RW locks must keep every (S, CT,
fitness) triple internally consistent no matter how sweeps interleave.
"""

import numpy as np
import pytest

from repro.cga import CGAConfig, StopCondition
from repro.parallel import ThreadedPACGA


CFG = CGAConfig(grid_rows=6, grid_cols=6, ls_iterations=2, seed_with_minmin=False)


class TestThreadedPACGA:
    def test_single_thread_runs(self, tiny_instance):
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=1), seed=0)
        res = eng.run(StopCondition(max_generations=3))
        assert res.generations == 3
        assert res.evaluations == 3 * 36

    @pytest.mark.parametrize("n_threads", [2, 3, 4])
    def test_population_consistent_after_parallel_run(self, tiny_instance, n_threads):
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=n_threads), seed=1)
        eng.run(StopCondition(max_generations=4))
        eng.pop.check_invariants()  # no torn reads/writes leaked through

    def test_improves_over_initial(self, tiny_instance):
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=2)
        initial = eng.pop.best()[1]
        res = eng.run(StopCondition(max_generations=6))
        assert res.best_fitness <= initial

    def test_eval_budget_split_across_threads(self, tiny_instance):
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=3), seed=0)
        res = eng.run(StopCondition(max_evaluations=360))
        per = res.extra["per_thread_evaluations"]
        assert len(per) == 3
        assert sum(per) >= 3 * (360 // 3)  # block-granular overshoot allowed

    def test_blocks_partition_population(self, tiny_instance):
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=3), seed=0)
        joined = np.concatenate(eng.blocks)
        assert np.array_equal(np.sort(joined), np.arange(36))

    def test_wall_time_stop(self, tiny_instance):
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0)
        res = eng.run(StopCondition(wall_time_s=0.2))
        assert res.elapsed_s >= 0.2
        assert res.evaluations > 0

    def test_extra_metadata(self, tiny_instance):
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0)
        res = eng.run(StopCondition(max_generations=2))
        assert res.extra["n_threads"] == 2
        assert len(res.extra["per_thread_generations"]) == 2

    def test_best_assignment_valid(self, tiny_instance):
        from repro.scheduling import validate_assignment

        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=4), seed=3)
        res = eng.run(StopCondition(max_generations=3))
        validate_assignment(tiny_instance, res.best_assignment)

    def test_stress_many_generations(self, tiny_instance):
        # longer run to give interleavings a chance to corrupt state
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=4), seed=4)
        eng.run(StopCondition(max_generations=25))
        eng.pop.check_invariants()

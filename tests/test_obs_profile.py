"""``--obs-profile``: collapsed-stack estimation + profiler lifecycle."""

from types import SimpleNamespace

import pytest

from repro.obs import PhaseProfiler, collapse_pstats
from repro.obs.profile import calibrate_overhead_s

MAIN = ("app.py", 1, "main")
WORK = ("app.py", 10, "work")
LEAF = ("app.py", 20, "leaf")


def stats(table):
    """A pstats.Stats stand-in: collapse_pstats only reads ``.stats``."""
    return SimpleNamespace(stats=table)


class TestCollapsePstats:
    def test_golden_linear_chain(self):
        """main(1.0s) -> work(0.9s) -> leaf(0.5s): the collapsed output
        is pinned byte-for-byte (deterministic expansion, integer µs)."""
        table = {
            MAIN: (1, 1, 0.1, 1.0, {}),
            WORK: (1, 1, 0.4, 0.9, {MAIN: (1, 1, 0.4, 0.9)}),
            LEAF: (1, 1, 0.5, 0.5, {WORK: (1, 1, 0.5, 0.5)}),
        }
        assert collapse_pstats(stats(table)) == (
            "app.py:1(main) 100000\n"
            "app.py:1(main);app.py:10(work) 400000\n"
            "app.py:1(main);app.py:10(work);app.py:20(leaf) 500000\n"
        )

    def test_shared_callee_split_proportionally(self):
        """A leaf called from two sites splits its cumulative time over
        the callers by the per-edge cumulative times (0.3 vs 0.1)."""
        a = ("app.py", 30, "a")
        b = ("app.py", 40, "b")
        table = {
            MAIN: (1, 1, 0.0, 1.0, {}),
            a: (1, 1, 0.2, 0.5, {MAIN: (1, 1, 0.2, 0.5)}),
            b: (1, 1, 0.4, 0.5, {MAIN: (1, 1, 0.4, 0.5)}),
            LEAF: (2, 2, 0.4, 0.4, {a: (1, 1, 0.3, 0.3), b: (1, 1, 0.1, 0.1)}),
        }
        lines = dict(
            line.rsplit(" ", 1) for line in collapse_pstats(stats(table)).splitlines()
        )
        assert lines["app.py:1(main);app.py:30(a);app.py:20(leaf)"] == "300000"
        assert lines["app.py:1(main);app.py:40(b);app.py:20(leaf)"] == "100000"
        # self-times land on the frames themselves
        assert lines["app.py:1(main);app.py:30(a)"] == "200000"
        assert lines["app.py:1(main);app.py:40(b)"] == "400000"

    def test_recursion_terminates_and_keeps_time(self):
        """A self-recursive frame must not expand forever; its time is
        folded into the existing stack."""
        table = {
            MAIN: (1, 1, 0.1, 1.0, {}),
            WORK: (5, 3, 0.9, 0.9, {MAIN: (1, 1, 0.5, 0.5), WORK: (2, 2, 0.4, 0.4)}),
        }
        out = collapse_pstats(stats(table))
        total_us = sum(int(line.rsplit(" ", 1)[1]) for line in out.splitlines())
        assert total_us > 0
        assert all(line.count("work") <= 2 for line in out.splitlines())

    def test_builtin_labels(self):
        builtin = ("~", 0, "<built-in method builtins.len>")
        table = {
            MAIN: (1, 1, 0.1, 0.2, {}),
            builtin: (1, 1, 0.1, 0.1, {MAIN: (1, 1, 0.1, 0.1)}),
        }
        out = collapse_pstats(stats(table))
        assert "app.py:1(main);built-in method builtins.len 100000" in out


class TestCalibration:
    def test_zero_events_is_free(self):
        assert calibrate_overhead_s(0) == 0.0

    def test_estimate_is_nonnegative_and_scales(self):
        one = calibrate_overhead_s(1_000, probe_calls=2_000)
        many = calibrate_overhead_s(1_000_000, probe_calls=2_000)
        assert one >= 0.0
        assert many >= one


def busy(n: int = 40_000) -> int:
    acc = 0
    for i in range(n):
        acc += i % 7
    return acc


class TestPhaseProfiler:
    def test_requires_bundle_directory(self, tmp_path):
        with pytest.raises(ValueError, match="--obs-out"):
            PhaseProfiler(None)
        with pytest.raises(ValueError, match="--obs-out"):
            PhaseProfiler(SimpleNamespace(out=None, meta={}))

    def test_artifacts_and_meta_stamp(self, tmp_path):
        obs = SimpleNamespace(out=tmp_path / "bundle", meta={})
        with PhaseProfiler(obs) as prof:
            busy()
        for name in ("profile.pstats", "profile.txt", "profile.collapsed"):
            assert (obs.out / name).exists(), name
        stamp = obs.meta["profile"]
        assert stamp["events"] > 0
        assert stamp["total_time_s"] > 0.0
        assert stamp["overhead_est_s"] >= 0.0
        assert stamp["artifacts"] == [
            "profile.collapsed",
            "profile.pstats",
            "profile.txt",
        ]
        assert any("busy" in e["function"] for e in stamp["top_cumulative"])
        collapsed = (obs.out / "profile.collapsed").read_text()
        assert "busy" in collapsed
        for line in collapsed.strip().splitlines():
            path, us = line.rsplit(" ", 1)
            assert int(us) > 0 and path
        # finalize is idempotent: same paths, no double stamping
        assert prof.finalize() == prof.paths

    def test_pstats_artifact_loads(self, tmp_path):
        import pstats

        obs = SimpleNamespace(out=tmp_path / "bundle", meta={})
        with PhaseProfiler(obs):
            busy(5_000)
        loaded = pstats.Stats(str(obs.out / "profile.pstats"))
        assert loaded.total_calls > 0

"""Tests for the readers-writer lock, including concurrency stress."""

import threading
import time

import pytest

from repro.parallel import LockManager, RWLock


class TestBasicProtocol:
    def test_read_reentrant_across_readers(self):
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()  # second reader enters concurrently
        lock.release_read()
        lock.release_read()

    def test_write_excludes_write(self):
        lock = RWLock()
        lock.acquire_write()
        grabbed = []

        def contender():
            lock.acquire_write()
            grabbed.append(True)
            lock.release_write()

        t = threading.Thread(target=contender)
        t.start()
        time.sleep(0.05)
        assert not grabbed  # still blocked
        lock.release_write()
        t.join(timeout=2)
        assert grabbed

    def test_read_blocks_write(self):
        lock = RWLock()
        lock.acquire_read()
        grabbed = []

        def writer():
            lock.acquire_write()
            grabbed.append(True)
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        assert not grabbed
        lock.release_read()
        t.join(timeout=2)
        assert grabbed

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        order = []

        def writer():
            lock.acquire_write()
            order.append("w")
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            order.append("r")
            lock.release_read()

        tw = threading.Thread(target=writer)
        tw.start()
        time.sleep(0.05)  # writer now waiting
        tr = threading.Thread(target=late_reader)
        tr.start()
        time.sleep(0.05)
        lock.release_read()
        tw.join(timeout=2)
        tr.join(timeout=2)
        assert order[0] == "w"  # the waiting writer went first

    def test_release_without_acquire_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_context_managers(self):
        lock = RWLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass

    def test_context_manager_releases_on_exception(self):
        lock = RWLock()
        with pytest.raises(ValueError):
            with lock.write_locked():
                raise ValueError("boom")
        # lock must be free again
        lock.acquire_write()
        lock.release_write()


class TestStress:
    def test_counter_integrity_under_contention(self):
        # writers increment a plain int; RW exclusion must keep the
        # read-modify-write races away.
        lock = RWLock()
        state = {"v": 0}
        n_writers, n_incr = 4, 300

        def writer():
            for _ in range(n_incr):
                with lock.write_locked():
                    v = state["v"]
                    state["v"] = v + 1

        readers_saw = []

        def reader():
            for _ in range(200):
                with lock.read_locked():
                    readers_saw.append(state["v"])

        threads = [threading.Thread(target=writer) for _ in range(n_writers)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert state["v"] == n_writers * n_incr
        assert all(0 <= v <= n_writers * n_incr for v in readers_saw)


class TestLockManager:
    def test_one_lock_per_individual(self):
        mgr = LockManager(10)
        assert len(mgr) == 10

    def test_independent_cells(self):
        mgr = LockManager(2)
        with mgr.write(0):
            # a different cell is not blocked
            with mgr.read(1):
                pass

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LockManager(0)

"""Tests for H2LL (Algorithm 4) and the ablation local searches."""

import numpy as np
import pytest

from repro.cga.local_search import LOCAL_SEARCHES, h2ll, h2ll_steepest, random_move_ls
from repro.scheduling.schedule import compute_completion_times
from repro.scheduling.validation import check_completion_times, validate_assignment


@pytest.fixture
def state(small_instance, rng):
    s = rng.integers(0, small_instance.nmachines, small_instance.ntasks).astype(np.int32)
    ct = compute_completion_times(small_instance, s)
    return s, ct


ALL_LS = [(n, f) for n, f in LOCAL_SEARCHES.items() if n != "lth"]


@pytest.mark.parametrize("name,fn", ALL_LS)
class TestAllLocalSearches:
    def test_never_worsens_makespan(self, name, fn, small_instance, state, rng):
        s, ct = state
        before = ct.max()
        fn(s, ct, small_instance, rng, 10, None)
        assert ct.max() <= before + 1e-9

    def test_keeps_ct_exact(self, name, fn, small_instance, state, rng):
        s, ct = state
        fn(s, ct, small_instance, rng, 10, None)
        check_completion_times(small_instance, s, ct)

    def test_keeps_assignment_valid(self, name, fn, small_instance, state, rng):
        s, ct = state
        fn(s, ct, small_instance, rng, 10, None)
        validate_assignment(small_instance, s)

    def test_zero_iterations_noop(self, name, fn, small_instance, state, rng):
        s, ct = state
        before_s, before_ct = s.copy(), ct.copy()
        assert fn(s, ct, small_instance, rng, 0, None) == 0
        assert np.array_equal(s, before_s)
        assert np.array_equal(ct, before_ct)

    def test_returns_move_count(self, name, fn, small_instance, state, rng):
        s, ct = state
        moves = fn(s, ct, small_instance, rng, 10, None)
        assert 0 <= moves <= 10


class TestH2LL:
    def test_improves_unbalanced_schedule(self, small_instance, rng):
        # all tasks on machine 0: H2LL must strictly improve
        s = np.zeros(small_instance.ntasks, dtype=np.int32)
        ct = compute_completion_times(small_instance, s)
        before = ct.max()
        moves = h2ll(s, ct, small_instance, rng, 10)
        assert moves > 0
        assert ct.max() < before

    def test_moves_come_off_most_loaded(self, small_instance, rng):
        s = np.zeros(small_instance.ntasks, dtype=np.int32)
        ct = compute_completion_times(small_instance, s)
        h2ll(s, ct, small_instance, rng, 1)
        # exactly one task moved off machine 0
        assert int((s != 0).sum()) == 1

    def test_candidate_restriction(self, small_instance, rng):
        # with 1 candidate, the move targets the single least loaded machine
        s = np.zeros(small_instance.ntasks, dtype=np.int32)
        ct = compute_completion_times(small_instance, s)
        h2ll(s, ct, small_instance, rng, 1, n_candidates=1)
        moved = np.flatnonzero(s != 0)
        assert moved.size == 1
        # target had zero load before; any non-0 machine qualifies as least
        assert s[moved[0]] != 0

    def test_progress_on_benchmark(self, benchmark_instance, rng):
        s = rng.integers(0, 16, 512).astype(np.int32)
        ct = compute_completion_times(benchmark_instance, s)
        start = ct.max()
        for _ in range(50):
            h2ll(s, ct, benchmark_instance, rng, 10)
        assert ct.max() < 0.9 * start
        check_completion_times(benchmark_instance, s, ct)

    def test_respects_makespan_guard(self, rng):
        # a move is applied only if the new completion stays below the
        # makespan; craft a case where every candidate violates that.
        from repro.etc import ETCMatrix

        etc = np.array(
            [
                [1.0, 100.0],
                [1.0, 100.0],
            ]
        )
        inst = ETCMatrix(etc)
        s = np.zeros(2, dtype=np.int32)
        ct = compute_completion_times(inst, s)
        moves = h2ll(s, ct, inst, rng, 5)
        # moving any task to machine 1 costs 100 > makespan 2: no moves
        assert moves == 0
        assert np.all(s == 0)

    def test_single_machine_no_crash(self, rng):
        from repro.etc import make_instance

        inst = make_instance(8, 1, seed=0)
        s = np.zeros(8, dtype=np.int32)
        ct = compute_completion_times(inst, s)
        assert h2ll(s, ct, inst, rng, 5) == 0


class TestH2LLSteepest:
    def test_picks_globally_cheapest_pair(self, rng):
        # 3 tasks on machine 0; the cheapest (task, destination) pair by
        # Algorithm 4's score is task 2 -> machine 1 (1 + 0 = 1).
        from repro.etc import ETCMatrix

        etc = np.array(
            [
                [5.0, 9.0, 9.0],
                [5.0, 8.0, 9.0],
                [5.0, 1.0, 2.0],
            ]
        )
        inst = ETCMatrix(etc)
        s = np.zeros(3, dtype=np.int32)
        ct = compute_completion_times(inst, s)
        moves = h2ll_steepest(s, ct, inst, rng, 1, n_candidates=2)
        assert moves == 1
        assert s.tolist() == [0, 0, 1]

    def test_stops_at_local_optimum(self, small_instance, rng):
        s = np.zeros(small_instance.ntasks, dtype=np.int32)
        ct = compute_completion_times(small_instance, s)
        # run to convergence twice; second call must make no moves
        while h2ll_steepest(s, ct, small_instance, rng, 50):
            pass
        assert h2ll_steepest(s, ct, small_instance, rng, 10) == 0


class TestRandomMoveLS:
    def test_only_improving_moves(self, small_instance, state, rng):
        s, ct = state
        trace = [ct.max()]
        for _ in range(20):
            random_move_ls(s, ct, small_instance, rng, 5)
            trace.append(ct.max())
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))

    def test_weaker_than_h2ll(self, benchmark_instance):
        # same budget: H2LL's targeted moves beat blind random moves
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        s1 = rng1.integers(0, 16, 512).astype(np.int32)
        s2 = s1.copy()
        ct1 = compute_completion_times(benchmark_instance, s1)
        ct2 = ct1.copy()
        h2ll(s1, ct1, benchmark_instance, rng1, 100)
        random_move_ls(s2, ct2, benchmark_instance, rng2, 100)
        assert ct1.max() < ct2.max()

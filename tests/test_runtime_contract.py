"""Cross-engine contract suite, parametrized from the engine registry.

Every registered engine — regardless of substrate — must produce a
schema-valid :class:`RunResult`, respect ``max_evaluations`` within one
sweep of the budget, honor ``seed_with_minmin``, and (where the
registry marks it checkpointable) resume a mid-run checkpoint to a
bit-identical final result.
"""

import json

import numpy as np
import pytest

from repro.cga import CGAConfig, StopCondition
from repro.heuristics.minmin import min_min
from repro.runtime import (
    capture_state,
    checkpointable_engines,
    create_engine,
    engine_names,
    resolve_engine,
    resume_engine,
    run_with_checkpoints,
)

CFG = CGAConfig(
    grid_rows=8,
    grid_cols=8,
    ls_iterations=2,
    n_threads=2,
    seed_with_minmin=False,
)

ALL_ENGINES = engine_names()

#: (engine, n_threads) cases for the bit-exact resume contract —
#: threads is exercised at 1..4 workers (lockstep schedule).
RESUME_CASES = [
    ("async", 1),
    ("sync", 1),
    ("vectorized", 1),
    ("sim", 3),
    ("threads", 1),
    ("threads", 2),
    ("threads", 3),
    ("threads", 4),
    ("shm", 1),
    ("shm", 2),
    ("shm", 4),
]


def _make(name, instance, seed=3, config=CFG, **extras):
    if resolve_engine(name).name in ("threads", "shm"):
        extras.setdefault("lockstep", True)
    return create_engine(name, instance, config, seed=seed, **extras)


@pytest.mark.parametrize("name", ALL_ENGINES)
class TestRunResultContract:
    def test_engine_name_matches_registry(self, name, small_instance):
        eng = _make(name, small_instance)
        assert eng.engine_name == resolve_engine(name).name

    def test_schema_valid_run_result(self, name, small_instance):
        eng = _make(name, small_instance)
        res = eng.run(StopCondition(max_evaluations=300))
        assert isinstance(res.best_fitness, float) and res.best_fitness > 0
        a = res.best_assignment
        assert a.shape == (small_instance.ntasks,)
        assert np.issubdtype(a.dtype, np.integer)
        assert (a >= 0).all() and (a < small_instance.nmachines).all()
        assert res.evaluations > 0
        assert res.generations >= 1
        assert res.elapsed_s >= 0.0
        assert isinstance(res.history, list)
        assert isinstance(res.extra, dict)
        # the reported best is a real makespan of the reported assignment
        assert res.best_schedule(small_instance).makespan() == pytest.approx(
            res.best_fitness
        )
        eng.pop.check_invariants()

    def test_max_evaluations_within_one_sweep(self, name, small_instance):
        cap = 500
        res = _make(name, small_instance).run(StopCondition(max_evaluations=cap))
        assert abs(res.evaluations - cap) <= CFG.grid.size

    def test_seed_with_minmin_honored(self, name, small_instance):
        cfg = CFG.with_(seed_with_minmin=True)
        eng = _make(name, small_instance, config=cfg)
        mm = min_min(small_instance).s
        assert any(np.array_equal(row, mm) for row in eng.pop.s)


class TestResumeContract:
    @pytest.mark.parametrize("name,n", RESUME_CASES)
    def test_mid_run_checkpoint_resumes_bit_exact(
        self, name, n, small_instance, tmp_path
    ):
        """A snapshot taken *during* a run replays to the identical end.

        The reference run itself is checkpointed halfway (the stop
        condition must be the same one the resumed run continues under:
        for the partitioned engines, stopping early is itself a
        different trajectory — fast workers halt instead of evolving on
        while slow ones finish, and their writes are visible across
        block boundaries).
        """
        cfg = CFG.with_(n_threads=n)
        stop = StopCondition(max_generations=10)
        straight_eng = _make(name, small_instance, seed=5, config=cfg)
        snap = {}

        def keep_first(eng):
            if not snap:
                snap.update(capture_state(eng, stop=stop))

        straight_eng.arm_checkpoint(5, keep_first)
        straight = straight_eng.run(stop)
        straight_eng.arm_checkpoint(None, None)
        assert snap, "checkpoint never fired mid-run"

        path = tmp_path / "ck.json"
        path.write_text(json.dumps(snap))
        resumed_eng, embedded = resume_engine(path, instance=small_instance)
        res = resumed_eng.run(embedded)

        assert res.best_fitness == straight.best_fitness
        assert np.array_equal(res.best_assignment, straight.best_assignment)
        assert np.array_equal(resumed_eng.pop.s, straight_eng.pop.s)
        assert res.evaluations == straight.evaluations
        assert res.generations == straight.generations
        assert res.history == straight.history

    def test_registry_resume_cases_cover_every_checkpointable_engine(self):
        assert {name for name, _ in RESUME_CASES} == set(checkpointable_engines())

    def test_embedded_stop_condition_round_trips(self, small_instance, tmp_path):
        eng = _make("async", small_instance, seed=2)
        run_with_checkpoints(
            eng, StopCondition(max_generations=4), tmp_path / "c.json"
        )
        _, stop = resume_engine(tmp_path / "c.json", instance=small_instance)
        assert stop == StopCondition(max_generations=4)

    def test_processes_engine_rejects_checkpointing(self, small_instance):
        eng = create_engine("processes", small_instance, CFG, seed=1)
        with pytest.raises(ValueError, match="not checkpointable"):
            capture_state(eng)

    def test_free_running_threads_reject_checkpointing(self, small_instance):
        eng = create_engine("threads", small_instance, CFG, seed=1)
        with pytest.raises(ValueError, match="lockstep"):
            eng.arm_checkpoint(1, lambda e: None)

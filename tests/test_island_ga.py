"""Tests for the island-model GA baseline."""

import numpy as np
import pytest

from repro.baselines.island_ga import IslandGA
from repro.cga import CGAConfig, StopCondition
from repro.scheduling.validation import validate_assignment


SMALL = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False)


class TestConstruction:
    def test_islands_created(self, tiny_instance):
        ga = IslandGA(tiny_instance, n_islands=3, island_config=SMALL, seed=0)
        assert len(ga.islands) == 3
        for pop in ga.islands:
            pop.check_invariants()

    def test_minmin_seed_only_island_zero(self, tiny_instance):
        from repro.heuristics import min_min

        config = SMALL.with_(seed_with_minmin=True)
        ga = IslandGA(tiny_instance, n_islands=2, island_config=config, seed=0)
        mm = min_min(tiny_instance)
        assert np.array_equal(ga.islands[0].s[0], mm.s)
        assert not np.array_equal(ga.islands[1].s[0], mm.s)

    def test_validation(self, tiny_instance):
        with pytest.raises(ValueError):
            IslandGA(tiny_instance, n_islands=0)
        with pytest.raises(ValueError):
            IslandGA(tiny_instance, migration_interval=0)
        with pytest.raises(ValueError):
            IslandGA(tiny_instance, migrants=0)
        with pytest.raises(ValueError):
            IslandGA(tiny_instance, island_config=SMALL, migrants=16)


class TestMigration:
    def test_elite_travels_around_ring(self, tiny_instance):
        ga = IslandGA(
            tiny_instance, n_islands=3, island_config=SMALL, migration_interval=1, seed=1
        )
        # plant a super individual in island 0
        ga.islands[0].fitness[0] = 0.5 * ga.islands[0].fitness.min()
        fit0 = float(ga.islands[0].fitness[0])
        ga._migrate()
        assert float(ga.islands[1].fitness.min()) == pytest.approx(fit0)
        ga._migrate()
        assert float(ga.islands[2].fitness.min()) == pytest.approx(fit0)

    def test_migration_never_degrades_target(self, tiny_instance):
        ga = IslandGA(tiny_instance, n_islands=4, island_config=SMALL, seed=2)
        before = [pop.fitness.copy() for pop in ga.islands]
        ga._migrate()
        for pop, old in zip(ga.islands, before):
            # only the worst slots may change, and only for the better
            assert pop.fitness.min() <= old.min() + 1e-9
            assert pop.fitness.max() <= old.max() + 1e-9

    def test_single_island_migration_noop(self, tiny_instance):
        ga = IslandGA(tiny_instance, n_islands=1, island_config=SMALL, seed=0)
        before = ga.islands[0].s.copy()
        ga._migrate()
        assert np.array_equal(ga.islands[0].s, before)


class TestRun:
    def test_improves_and_valid(self, small_instance):
        ga = IslandGA(small_instance, n_islands=3, island_config=SMALL, seed=3)
        initial = ga.best()[2]
        res = ga.run(StopCondition(max_generations=8))
        assert res.best_fitness <= initial
        validate_assignment(small_instance, res.best_assignment)
        assert res.extra["algorithm"] == "island-ga"
        assert res.extra["migrations"] >= 1

    def test_evaluation_budget(self, tiny_instance):
        ga = IslandGA(tiny_instance, n_islands=2, island_config=SMALL, seed=0)
        res = ga.run(StopCondition(max_evaluations=40))
        assert res.evaluations == 40

    def test_deterministic(self, tiny_instance):
        a = IslandGA(tiny_instance, n_islands=2, island_config=SMALL, seed=9).run(
            StopCondition(max_generations=4)
        )
        b = IslandGA(tiny_instance, n_islands=2, island_config=SMALL, seed=9).run(
            StopCondition(max_generations=4)
        )
        assert a.best_fitness == b.best_fitness

    def test_history_records_global_stats(self, tiny_instance):
        ga = IslandGA(tiny_instance, n_islands=2, island_config=SMALL, seed=0)
        res = ga.run(StopCondition(max_generations=3))
        assert len(res.history) == 4
        for gen, evals, best, mean in res.history:
            assert best <= mean

    def test_islands_stay_consistent(self, tiny_instance):
        ga = IslandGA(
            tiny_instance, n_islands=3, island_config=SMALL, migration_interval=2, seed=5
        )
        ga.run(StopCondition(max_generations=6))
        for pop in ga.islands:
            pop.check_invariants()

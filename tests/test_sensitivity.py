"""Tests for the cost-model sensitivity analysis."""

import pytest

from repro.experiments.sensitivity import (
    PARAMETERS,
    SensitivityResult,
    claims_hold,
    sensitivity_analysis,
)
from repro.parallel import XEON_E5440, CostModel


class TestClaimsHold:
    def test_base_model_satisfies_all(self):
        claims = claims_hold(XEON_E5440)
        assert all(claims.values()), claims

    def test_zero_contention_breaks_slowdown(self):
        # without any boundary cost, adding threads can only help
        free = CostModel(t_boundary=0.0, cache_alpha=0.0, cache_beta=0.0)
        claims = claims_hold(free)
        assert not claims["C1_slowdown"]

    def test_claim_keys(self):
        assert set(claims_hold(XEON_E5440)) == {
            "C1_slowdown",
            "C2_speedup",
            "C3_plateau",
            "C4_ls_helps",
        }


class TestSensitivityAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity_analysis()

    def test_covers_all_parameters_and_multipliers(self, result):
        assert len(result.outcomes) == len(PARAMETERS) * len(result.multipliers)

    def test_identity_multiplier_matches_base(self, result):
        for param in PARAMETERS:
            assert all(result.outcomes[(param, 1.0)].values()), param

    def test_speedup_claims_fully_robust(self, result):
        assert result.survival_rate("C2_speedup") == 1.0
        assert result.survival_rate("C3_plateau") == 1.0
        assert result.survival_rate("C4_ls_helps") == 1.0

    def test_slowdown_claim_mostly_robust(self, result):
        assert result.survival_rate("C1_slowdown") >= 0.8

    def test_fragile_settings_are_physical(self, result):
        # the slowdown claim may only break when synchronization gets
        # cheaper or computation dearer — never the other way round
        for param, mult, claim in result.fragile_settings():
            assert claim == "C1_slowdown"
            assert (param == "t_boundary" and mult < 1.0) or (
                param in ("t_breed", "t_lock", "t_ls_iter") and mult > 1.0
            ), (param, mult)

    def test_table_renders(self, result):
        out = result.table()
        assert "perturbation" in out
        assert "t_boundary" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            sensitivity_analysis(multipliers=())
        with pytest.raises(ValueError):
            sensitivity_analysis(multipliers=(1.0, -2.0))

"""Tests for repro.obs.timeseries — cadence gating and JSONL output."""

import json

import pytest

from repro.obs import TimeSeriesSampler


class TestValidation:
    def test_needs_a_cadence(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(every_evals=None, every_s=None)

    def test_rejects_bad_cadences(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(every_evals=0)
        with pytest.raises(ValueError):
            TimeSeriesSampler(every_evals=None, every_s=0.0)


class TestCadence:
    def test_eval_cadence(self):
        s = TimeSeriesSampler(every_evals=100)
        emitted = [ev for ev in range(0, 1001, 50) if s.tick(ev, 0.0, dict)]
        # fires at every 100-eval boundary, not at 50-eval half steps
        assert emitted == [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        assert len(s) == 10

    def test_time_cadence(self):
        s = TimeSeriesSampler(every_evals=None, every_s=1.0)
        emitted = [t for t in (0.2, 0.9, 1.1, 1.5, 2.3) if s.tick(0, t, dict)]
        assert emitted == [1.1, 2.3]

    def test_provider_called_only_on_emission(self):
        calls = []
        s = TimeSeriesSampler(every_evals=10)

        def provider():
            calls.append(1)
            return {"x": 1}

        for ev in range(0, 25):
            s.tick(ev, 0.0, provider)
        assert len(calls) == len(s) == 2

    def test_force_overrides_cadence(self):
        s = TimeSeriesSampler(every_evals=1000)
        assert not s.tick(1, 0.0, dict)
        assert s.tick(1, 0.0, dict, force=True)
        assert len(s) == 1

    def test_row_carries_coordinates_and_provider_fields(self):
        s = TimeSeriesSampler(every_evals=1)
        s.tick(5, 0.25, lambda: {"best": 42.0})
        (row,) = s.rows
        assert row == {"t_s": 0.25, "evaluations": 5, "best": 42.0}


class TestSerialization:
    def test_jsonl_roundtrip(self, tmp_path):
        s = TimeSeriesSampler(every_evals=1)
        s.tick(1, 0.1, lambda: {"best": 1.0})
        s.tick(2, 0.2, lambda: {"best": 0.5})
        path = tmp_path / "ts.jsonl"
        s.write(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == s.rows

    def test_empty_sampler_writes_empty_file(self, tmp_path):
        s = TimeSeriesSampler(every_evals=1)
        path = tmp_path / "ts.jsonl"
        s.write(path)
        assert path.read_text() == ""


class TestStreaming:
    def test_rows_hit_disk_per_tick(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        s = TimeSeriesSampler(every_evals=1, stream_to=path)
        assert s.streaming
        s.tick(1, 0.1, lambda: {"best": 2.0})
        # visible on disk before any write()/close() — crash-safe
        assert json.loads(path.read_text().splitlines()[0])["best"] == 2.0
        s.tick(2, 0.2, lambda: {"best": 1.0})
        assert len(path.read_text().splitlines()) == 2

    def test_eviction_keeps_baseline_and_tail(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        s = TimeSeriesSampler(every_evals=1, stream_to=path, keep_rows=4)
        for ev in range(1, 11):
            s.tick(ev, ev / 10.0, lambda ev=ev: {"n": ev})
        # the file holds everything ...
        assert len(path.read_text().splitlines()) == 10
        assert len(s) == s.n_total == 10
        # ... memory holds the first row plus the newest tail
        assert len(s.rows) == 4
        assert [r["n"] for r in s.rows] == [1, 8, 9, 10]

    def test_write_to_stream_path_is_flush_only(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        s = TimeSeriesSampler(every_evals=1, stream_to=path, keep_rows=2)
        for ev in range(1, 6):
            s.tick(ev, 0.0, lambda ev=ev: {"n": ev})
        s.write(path)  # must not truncate to the retained subset
        assert len(path.read_text().splitlines()) == 5
        s.close()  # idempotent

    def test_write_elsewhere_serializes_retained_rows(self, tmp_path):
        s = TimeSeriesSampler(every_evals=1, stream_to=tmp_path / "a.jsonl")
        s.tick(1, 0.0, lambda: {"n": 1})
        other = tmp_path / "b.jsonl"
        s.write(other)
        assert json.loads(other.read_text())["n"] == 1

    def test_no_rows_leaves_empty_stream_file(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        s = TimeSeriesSampler(every_evals=10**9, stream_to=path)
        s.write(path)
        assert path.exists() and path.read_text() == ""

    def test_keep_rows_validation(self, tmp_path):
        with pytest.raises(ValueError):
            TimeSeriesSampler(every_evals=1, keep_rows=1)

"""Tests for the quality-vs-LP harness."""

import pytest

from repro.experiments import QualityRow, quality_experiment


class TestQualityRow:
    def test_gaps(self):
        row = QualityRow(instance="x", lp_bound=100.0, minmin=130.0, pa_cga=110.0)
        assert row.minmin_gap == pytest.approx(0.30)
        assert row.pa_cga_gap == pytest.approx(0.10)


class TestQualityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return quality_experiment(
            instances=["u_i_hilo.0", "u_c_lolo.0"], max_evaluations=1000, seed=1
        )

    def test_rows_per_instance(self, result):
        assert [r.instance for r in result.rows] == ["u_i_hilo.0", "u_c_lolo.0"]

    def test_ordering_invariants(self, result):
        for row in result.rows:
            assert row.lp_bound <= row.pa_cga + 1e-6
            assert row.pa_cga <= row.minmin * 1.0001  # elitist seed

    def test_mean_gap_positive(self, result):
        assert result.mean_gap() >= 0.0

    def test_table_renders(self, result):
        out = result.table()
        assert "LP bound" in out
        assert "u_i_hilo.0" in out

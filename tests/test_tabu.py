"""Tests for the standalone Tabu Search baseline."""

import numpy as np
import pytest

from repro.baselines.tabu import TabuSearch
from repro.cga import StopCondition
from repro.heuristics import min_min
from repro.scheduling.validation import check_completion_times, validate_assignment


class TestConstruction:
    def test_minmin_start(self, tiny_instance):
        ts = TabuSearch(tiny_instance, rng=0)
        assert np.array_equal(ts.current.s, min_min(tiny_instance).s)

    def test_random_start(self, tiny_instance):
        ts = TabuSearch(tiny_instance, seed_with_minmin=False, rng=0)
        assert not np.array_equal(ts.current.s, min_min(tiny_instance).s)

    def test_validation(self, tiny_instance):
        with pytest.raises(ValueError):
            TabuSearch(tiny_instance, batch=0)
        with pytest.raises(ValueError):
            TabuSearch(tiny_instance, stagnation=0)
        with pytest.raises(ValueError):
            TabuSearch(tiny_instance, shake_moves=0)


class TestRun:
    def test_best_never_degrades(self, small_instance):
        ts = TabuSearch(small_instance, rng=1)
        start = ts.best.makespan()
        res = ts.run(StopCondition(max_evaluations=2000))
        assert res.best_fitness <= start

    def test_improves_random_start(self, small_instance):
        ts = TabuSearch(small_instance, seed_with_minmin=False, rng=2)
        start = ts.best.makespan()
        res = ts.run(StopCondition(max_evaluations=3000))
        assert res.best_fitness < 0.8 * start

    def test_state_consistent_after_run(self, small_instance):
        ts = TabuSearch(small_instance, rng=3)
        res = ts.run(StopCondition(max_evaluations=1500))
        validate_assignment(small_instance, res.best_assignment)
        check_completion_times(small_instance, ts.current.s, ts.current.ct)
        from repro.scheduling import makespan

        assert makespan(small_instance, res.best_assignment) == pytest.approx(
            res.best_fitness
        )

    def test_diversification_triggers(self, tiny_instance):
        # tiny instance converges instantly, so stagnation must fire
        ts = TabuSearch(tiny_instance, stagnation=2, rng=4)
        res = ts.run(StopCondition(max_evaluations=2000))
        assert res.extra["shakes"] > 0

    def test_deterministic(self, tiny_instance):
        a = TabuSearch(tiny_instance, rng=5).run(StopCondition(max_evaluations=800))
        b = TabuSearch(tiny_instance, rng=5).run(StopCondition(max_evaluations=800))
        assert a.best_fitness == b.best_fitness

    def test_history_best_monotone(self, small_instance):
        ts = TabuSearch(small_instance, rng=0)
        res = ts.run(StopCondition(max_evaluations=1500))
        bests = [row[2] for row in res.history]
        assert all(b <= a + 1e-9 for a, b in zip(bests, bests[1:]))

    def test_competitive_with_sa(self, benchmark_instance):
        from repro.baselines import SimulatedAnnealing

        budget = StopCondition(max_evaluations=3000)
        ts = TabuSearch(benchmark_instance, rng=1).run(budget)
        sa = SimulatedAnnealing(benchmark_instance, rng=1).run(budget)
        # both start from Min-min; TS's structured moves should be at
        # least comparable (generous factor: different eval units)
        assert ts.best_fitness <= sa.best_fitness * 1.1

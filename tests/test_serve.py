"""Solve-as-a-service core: validation, cache, store, scheduler, recovery."""

from __future__ import annotations

import json
import time

import pytest

from repro.serve import (
    JobStore,
    JobValidationError,
    LRUCache,
    QueueFull,
    ServiceDraining,
    SolveService,
    validate_job,
)

# a tiny deterministic flowshop job: generator-spec instances need no
# data files and a 4x4 grid finishes a handful of generations in ~100ms
FAST_JOB = {
    "problem": "flowshop",
    "instance": "fs8x4.1",
    "engine": "sync",
    "config": {"grid_rows": 4, "grid_cols": 4},
    "budget": {"max_generations": 6},
    "seed": 1,
}
# big enough to still be mid-flight when a test drains the service
LONG_JOB = {
    "problem": "flowshop",
    "instance": "fs10x5.1",
    "engine": "sync",
    "config": {"grid_rows": 6, "grid_cols": 6, "ls_iterations": 30},
    "budget": {"max_generations": 50},
}


def _wait(predicate, timeout_s=30.0, every_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(every_s)
    raise AssertionError("condition not met within timeout")


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch: 'b' is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_get_or_load_counts_hits_and_misses(self):
        cache = LRUCache(4)
        loads = []
        for _ in range(3):
            assert cache.get_or_load("k", lambda: loads.append(1) or "v") == "v"
        assert len(loads) == 1
        assert cache.stats() == {"capacity": 4, "size": 1, "hits": 2, "misses": 1}


class TestValidateJob:
    def test_defaults_fill_in(self):
        spec = validate_job({})
        assert spec["problem"] == "independent"
        assert spec["engine"] == "async"
        assert spec["instance"] == "u_i_hihi.0"
        assert spec["budget"] == {"max_evaluations": 5000}
        assert spec["seed"] == 0 and spec["inject"] is None

    def test_unknown_field_rejected(self):
        with pytest.raises(JobValidationError, match="unknown job fields: bogus"):
            validate_job({"bogus": 1})

    def test_unknown_problem_and_engine_list_the_registry(self):
        with pytest.raises(JobValidationError, match="flowshop"):
            validate_job({"problem": "nope"})
        with pytest.raises(JobValidationError, match="async"):
            validate_job({"engine": "nope"})

    def test_non_checkpointable_engine_rejected(self):
        with pytest.raises(JobValidationError, match="does not support checkpoints"):
            validate_job({"engine": "processes"})

    def test_config_overrides_validated_against_cgaconfig(self):
        with pytest.raises(JobValidationError, match="invalid config overrides: bogus"):
            validate_job({"config": {"bogus": 1}})
        with pytest.raises(JobValidationError, match="problem"):
            validate_job({"config": {"problem": "flowshop"}})
        with pytest.raises(JobValidationError, match="single-stream"):
            validate_job({"engine": "sync", "config": {"n_threads": 3}})

    def test_budget_validated_against_stopcondition(self):
        with pytest.raises(JobValidationError, match="invalid budget bounds: walltime"):
            validate_job({"budget": {"walltime": 3}})
        with pytest.raises(JobValidationError, match="invalid budget"):
            validate_job({"budget": {"max_evaluations": -5}})
        # an empty budget falls back to the service default
        assert validate_job({"budget": {}})["budget"] == {"max_evaluations": 5000}

    def test_seed_must_be_nonnegative_int(self):
        for bad in (-1, 1.5, "7", True):
            with pytest.raises(JobValidationError, match="seed"):
                validate_job({"seed": bad})

    def test_inline_instance_payload(self):
        spec = validate_job(
            {"problem": "flowshop", "instance": {"name": "mine", "content": "fake"}}
        )
        assert spec["instance"] == {"name": "mine", "content": "fake"}
        with pytest.raises(JobValidationError, match="content"):
            validate_job({"instance": {"name": "x"}})
        with pytest.raises(JobValidationError, match="unknown keys"):
            validate_job({"instance": {"content": "x", "path": "/etc/passwd"}})

    def test_inject_keys_checked(self):
        with pytest.raises(JobValidationError, match="inject"):
            validate_job({"inject": {"explode": True}})


class TestJobStore:
    def test_records_persist_atomically(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(validate_job(FAST_JOB), max_retries=2)
        on_disk = json.loads((tmp_path / "jobs" / f"{job['id']}.json").read_text())
        assert on_disk["state"] == "queued" and on_disk["spec"]["engine"] == "sync"
        store.update(job["id"], state="running", worker=0)
        on_disk = json.loads((tmp_path / "jobs" / f"{job['id']}.json").read_text())
        assert on_disk["state"] == "running" and on_disk["worker"] == 0

    def test_recover_requeues_only_nonterminal(self, tmp_path):
        store = JobStore(tmp_path)
        spec = validate_job(FAST_JOB)
        a = store.create(spec, max_retries=2)
        b = store.create(spec, max_retries=2)
        c = store.create(spec, max_retries=2)
        store.update(a["id"], state="done")
        store.update(b["id"], state="running", worker=1)
        store.update(c["id"], state="parked")
        # foreign files sharing jobs/ (linked postmortems) must be skipped
        (tmp_path / "jobs" / f"{b['id']}-postmortem.json").write_text('{"error": "x"}')
        (tmp_path / "jobs" / "torn.json").write_text("{not json")
        fresh = JobStore(tmp_path)
        requeued = fresh.recover()
        assert [j["id"] for j in requeued] == [b["id"], c["id"]]
        assert all(j["state"] == "queued" and j["worker"] is None for j in requeued)
        assert fresh.get(a["id"])["state"] == "done"

    def test_unknown_state_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(validate_job(FAST_JOB), max_retries=0)
        with pytest.raises(ValueError, match="unknown job state"):
            store.update(job["id"], state="exploded")


class TestBackpressure:
    def test_queue_full_raises_with_retry_after(self, tmp_path):
        # service never started -> nothing drains the queue
        svc = SolveService(tmp_path, workers=1, queue_limit=2)
        svc.submit(FAST_JOB)
        svc.submit(FAST_JOB)
        with pytest.raises(QueueFull) as exc:
            svc.submit(FAST_JOB)
        assert exc.value.depth == 2 and exc.value.limit == 2
        assert exc.value.retry_after_s >= 1.0
        assert svc.metrics.counters["serve.jobs.rejected_full"] == 1

    def test_draining_service_rejects(self, tmp_path):
        svc = SolveService(tmp_path, workers=1)
        svc._draining.set()
        with pytest.raises(ServiceDraining):
            svc.submit(FAST_JOB)

    def test_invalid_payload_never_enqueued(self, tmp_path):
        svc = SolveService(tmp_path, workers=1)
        with pytest.raises(JobValidationError):
            svc.submit({"engine": "processes"})
        assert svc.snapshot()["queue_depth"] == 0 and not svc.jobs()


class TestServiceEndToEnd:
    def test_jobs_complete_and_metrics_render(self, tmp_path):
        svc = SolveService(tmp_path, workers=2, queue_limit=16).start()
        try:
            ids = [svc.submit(dict(FAST_JOB, seed=i))["id"] for i in range(4)]
            _wait(lambda: all(svc.job(i)["state"] == "done" for i in ids))
            for i in ids:
                rec = svc.job(i)
                assert rec["result"]["generations"] == 6
                assert rec["attempts"] == 1 and rec["error"] is None
            text = svc.openmetrics()
            assert "repro_serve_jobs_completed_total 4" in text
            assert text.rstrip().endswith("# EOF")
        finally:
            svc.stop()

    def test_identical_jobs_identical_results(self, tmp_path):
        # the worker's instance/seed caches must not perturb trajectories
        svc = SolveService(tmp_path, workers=1).start()
        try:
            a = svc.submit(FAST_JOB)["id"]
            b = svc.submit(FAST_JOB)["id"]
            _wait(lambda: svc.job(b)["state"] == "done" and svc.job(a)["state"] == "done")
            assert svc.job(a)["result"] == svc.job(b)["result"]
        finally:
            svc.stop()

    def test_crash_is_retried_from_checkpoint_with_postmortem(self, tmp_path):
        svc = SolveService(
            tmp_path, workers=1, fault_injection=True, retry_backoff_s=0.05
        ).start()
        try:
            job = svc.submit(
                dict(
                    FAST_JOB,
                    budget={"max_generations": 8},
                    inject={"crash_after_generations": 3, "crash_attempts": 1},
                )
            )
            rec = _wait(
                lambda: (r := svc.job(job["id"]))["state"] in ("done", "failed") and r
            )
            assert rec["state"] == "done"
            assert rec["attempts"] == 2
            assert rec["resumed"] is True  # attempt 2 resumed the checkpoint
            assert rec["result"]["generations"] == 8
            assert "died" in rec["error"]  # the crash note survives for operators
            postmortem = json.loads((tmp_path / "jobs").joinpath(
                f"{job['id']}-postmortem.json").read_text())
            assert rec["postmortem"].endswith(f"{job['id']}-postmortem.json")
            assert "injected worker crash" in json.dumps(postmortem)
            assert svc.metrics.counters["serve.jobs.retried"] == 1
            assert svc.metrics.counters["serve.workers.restarts"] == 1
        finally:
            svc.stop()

    def test_retries_exhausted_marks_failed(self, tmp_path):
        svc = SolveService(
            tmp_path, workers=1, fault_injection=True,
            max_retries=1, retry_backoff_s=0.05,
        ).start()
        try:
            job = svc.submit(
                dict(
                    FAST_JOB,
                    budget={"max_generations": 8},
                    inject={"crash_after_generations": 2, "crash_attempts": 99},
                )
            )
            rec = _wait(
                lambda: (r := svc.job(job["id"]))["state"] in ("done", "failed") and r
            )
            assert rec["state"] == "failed"
            assert rec["attempts"] == 2  # first try + one retry
            assert "died" in rec["error"] and rec["postmortem"] is not None
            assert svc.metrics.counters["serve.jobs.failed"] == 1
        finally:
            svc.stop()

    def test_deterministic_error_fails_without_retry(self, tmp_path):
        # unloadable instance: the worker reports it, no crash machinery
        svc = SolveService(tmp_path, workers=1).start()
        try:
            job = svc.submit(
                {"problem": "independent", "instance": "no_such_instance_file"}
            )
            rec = _wait(
                lambda: (r := svc.job(job["id"]))["state"] in ("done", "failed") and r
            )
            assert rec["state"] == "failed"
            assert rec["attempts"] == 1 and rec["postmortem"] is None
        finally:
            svc.stop()

    def test_inject_ignored_without_fault_injection(self, tmp_path):
        svc = SolveService(tmp_path, workers=1).start()
        try:
            job = svc.submit(
                dict(FAST_JOB, inject={"crash_after_generations": 1})
            )
            rec = _wait(
                lambda: (r := svc.job(job["id"]))["state"] in ("done", "failed") and r
            )
            assert rec["state"] == "done" and rec["attempts"] == 1
        finally:
            svc.stop()

    def test_inline_instance_roundtrip(self, tmp_path):
        # generate a flowshop instance body, submit it inline
        from repro.problems import resolve_problem

        problem = resolve_problem("flowshop")
        inst = problem.load_instance("fs6x3.2")
        lines = [f"{inst.njobs} {inst.nmachines}"]
        for j in range(inst.njobs):
            lines.append(" ".join(str(float(v)) for v in inst.p[j]))
        content = "\n".join(lines) + "\n"
        svc = SolveService(tmp_path, workers=1).start()
        try:
            job = svc.submit(
                {
                    "problem": "flowshop",
                    "instance": {"name": "inline-fs", "content": content},
                    "engine": "sync",
                    "config": {"grid_rows": 4, "grid_cols": 4},
                    "budget": {"max_generations": 4},
                }
            )
            rec = _wait(
                lambda: (r := svc.job(job["id"]))["state"] in ("done", "failed") and r
            )
            assert rec["state"] == "done", rec["error"]
            spooled = list((tmp_path / "instances").glob("inline-fs-*.inst"))
            assert len(spooled) == 1  # content-addressed spool file
        finally:
            svc.stop()


class TestStallEscalation:
    def test_hung_worker_is_killed_job_fails_and_slot_keeps_serving(self, tmp_path):
        # a worker that stops reporting progress must be SIGKILLed and
        # flow through the normal crash path: the job reaches a terminal
        # state, the slot restarts, and the service keeps processing
        svc = SolveService(
            tmp_path, workers=1, fault_injection=True,
            max_retries=0, stall_deadline_s=0.75,
        ).start()
        try:
            job = svc.submit(
                dict(
                    FAST_JOB,
                    budget={"max_generations": 8},
                    inject={"hang_after_generations": 2},
                )
            )
            rec = _wait(
                lambda: (r := svc.job(job["id"]))["state"] in ("done", "failed") and r
            )
            assert rec["state"] == "failed"
            assert "died" in rec["error"]
            # exactly one stall event: the kill is reaped next tick, so
            # the deadline check must not re-fire on the same stall
            assert svc.metrics.counters["serve.jobs.stalled"] == 1
            assert svc.metrics.counters["serve.workers.restarts"] == 1
            # the restarted slot still serves (workers=1: a lost slot
            # would park the whole service forever)
            follow = svc.submit(FAST_JOB)
            rec2 = _wait(
                lambda: (r := svc.job(follow["id"]))["state"] in ("done", "failed") and r
            )
            assert rec2["state"] == "done"
        finally:
            svc.stop()

    def test_stalled_job_retries_and_inflight_set_empties(self, tmp_path):
        # with retries left, a stall-kill must requeue the job; the hang
        # re-fires every attempt, so exhaustion ends in 'failed' with
        # nothing stuck in the in-flight set
        svc = SolveService(
            tmp_path, workers=1, fault_injection=True,
            max_retries=1, retry_backoff_s=0.05, stall_deadline_s=0.75,
        ).start()
        try:
            job = svc.submit(
                dict(
                    FAST_JOB,
                    budget={"max_generations": 8},
                    inject={"hang_after_generations": 2},
                )
            )
            rec = _wait(
                lambda: (r := svc.job(job["id"]))["state"] in ("done", "failed") and r,
                timeout_s=60.0,
            )
            assert rec["state"] == "failed"
            assert rec["attempts"] == 2
            assert svc.metrics.counters["serve.jobs.retried"] == 1
            assert svc.snapshot()["inflight"] == 0
        finally:
            svc.stop()


class TestDrainAndRecovery:
    def test_drain_parks_inflight_job_and_restart_resumes_it(self, tmp_path):
        svc = SolveService(tmp_path, workers=1)
        svc.start()
        job = svc.submit(LONG_JOB)
        # wait until the job is demonstrably mid-flight, then drain
        _wait(lambda: (svc.job(job["id"])["progress"] or {}).get("generation", 0) >= 2)
        assert svc.drain(timeout_s=30.0) is True
        rec = svc.job(job["id"])
        assert rec["state"] == "parked"
        parked_gen = (rec["progress"] or {}).get("generation", 0)
        assert parked_gen < LONG_JOB["budget"]["max_generations"]
        ckpt = tmp_path / "checkpoints" / f"{job['id']}.ckpt"
        assert ckpt.is_file()
        assert svc.metrics.counters["serve.jobs.parked"] >= 1

        # a fresh service on the same spool resumes and completes it
        svc2 = SolveService(tmp_path, workers=1).start()
        try:
            rec = _wait(
                lambda: (r := svc2.job(job["id"]))["state"] in ("done", "failed") and r,
                timeout_s=60.0,
            )
            assert rec["state"] == "done", rec["error"]
            assert rec["resumed"] is True
            assert rec["result"]["generations"] == LONG_JOB["budget"]["max_generations"]
            assert svc2.metrics.counters["serve.jobs.recovered_with_checkpoint"] == 1
        finally:
            svc2.stop()

    def test_queued_jobs_survive_drain_and_complete_on_restart(self, tmp_path):
        svc = SolveService(tmp_path, workers=1)
        svc.start()
        first = svc.submit(LONG_JOB)
        queued = [svc.submit(dict(FAST_JOB, seed=i))["id"] for i in range(2)]
        _wait(lambda: svc.job(first["id"])["state"] == "running")
        assert svc.drain(timeout_s=30.0) is True
        assert all(svc.job(i)["state"] == "queued" for i in queued)

        svc2 = SolveService(tmp_path, workers=2).start()
        try:
            _wait(
                lambda: all(
                    svc2.job(i)["state"] == "done" for i in [first["id"], *queued]
                ),
                timeout_s=60.0,
            )
        finally:
            svc2.stop()

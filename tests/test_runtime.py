"""Unit tests for the runtime layer: Budget accounting and RunContext setup."""

import numpy as np

from repro.cga import CGAConfig
from repro.cga.config import StopCondition
from repro.heuristics.minmin import min_min
from repro.runtime import Budget, build_context

CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False)


class TestBudget:
    def test_spend_and_generations(self):
        b = Budget(StopCondition(max_evaluations=10))
        b.spend()
        b.spend(4)
        assert b.evaluations == 5
        assert b.next_generation() == 1
        assert b.generations == 1

    def test_cap_reached_needs_eval_bound(self):
        assert not Budget(StopCondition(max_generations=3)).cap_reached()
        b = Budget(StopCondition(max_evaluations=2))
        assert not b.cap_reached()
        b.spend(2)
        assert b.cap_reached()

    def test_exhausted_on_generations(self):
        b = Budget(StopCondition(max_generations=2))
        assert not b.exhausted()
        b.next_generation()
        b.next_generation()
        assert b.exhausted()

    def test_resumed_counters_count_the_whole_run(self):
        b = Budget(StopCondition(max_evaluations=100), evaluations=100, generations=7)
        assert b.cap_reached()
        assert b.exhausted()

    def test_eval_share(self):
        assert Budget(StopCondition(max_generations=1)).eval_share(4) is None
        assert Budget(StopCondition(max_evaluations=100)).eval_share(3) == 33
        # never zero, even when workers outnumber the budget
        assert Budget(StopCondition(max_evaluations=2)).eval_share(8) == 1

    def test_worker_exhausted_share_and_generations(self):
        b = Budget(StopCondition(max_evaluations=100, max_generations=5))
        share = b.eval_share(2)
        assert not b.worker_exhausted(10, 1, share)
        assert b.worker_exhausted(50, 1, share)
        assert b.worker_exhausted(0, 5, None)

    def test_worker_exhausted_wall_clock(self):
        import time

        b = Budget(StopCondition(wall_time_s=1e-6)).start()
        time.sleep(0.002)
        assert b.worker_exhausted(0, 0, None)


class TestBuildContext:
    def test_single_stream_context(self, tiny_instance):
        ctx = build_context(tiny_instance, CFG, rng=3)
        assert isinstance(ctx.rng, np.random.Generator)
        assert sorted(ctx.sweep.tolist()) == list(range(16))
        assert ctx.blocks == []
        assert ctx.boundary_fraction == 0.0
        assert ctx.pop.s.shape == (16, tiny_instance.ntasks)

    def test_partitioned_context(self, tiny_instance):
        ctx = build_context(
            tiny_instance, CFG.with_(n_threads=2), seed=3, workers=2
        )
        assert len(ctx.blocks) == 2
        assert len(ctx.worker_rngs) == 2
        assert ctx.jitter_rngs == []
        assert sorted(np.concatenate(ctx.orders).tolist()) == list(range(16))
        assert 0.0 < ctx.boundary_fraction <= 1.0

    def test_jitter_streams_are_separate(self, tiny_instance):
        ctx = build_context(
            tiny_instance, CFG.with_(n_threads=2), seed=3, workers=2, jitter=True
        )
        assert len(ctx.worker_rngs) == 2
        assert len(ctx.jitter_rngs) == 2
        # genetic and jitter streams must never coincide
        genetic = {id(r) for r in ctx.worker_rngs}
        assert genetic.isdisjoint({id(r) for r in ctx.jitter_rngs})

    def test_deterministic_given_seed(self, tiny_instance):
        a = build_context(tiny_instance, CFG, rng=7)
        b = build_context(tiny_instance, CFG, rng=7)
        assert np.array_equal(a.pop.s, b.pop.s)
        assert a.rng.random() == b.rng.random()

    def test_minmin_seeded_population(self, tiny_instance):
        ctx = build_context(tiny_instance, CFG.with_(seed_with_minmin=True), rng=0)
        mm = min_min(tiny_instance).s
        assert any(np.array_equal(row, mm) for row in ctx.pop.s)

    def test_unseeded_population_lacks_minmin(self, tiny_instance):
        ctx = build_context(tiny_instance, CFG, rng=0)
        mm = min_min(tiny_instance).s
        assert not any(np.array_equal(row, mm) for row in ctx.pop.s)


class TestSeedCache:
    """The opt-in seed-schedule cache must be keyed by instance *content*.

    Instance header names are not content-unique and object ids recycle
    after GC, so neither may select a cache entry — the cache promises
    bit-exact trajectories.
    """

    def _flowshop_pair_sharing_a_name(self):
        from repro.problems.flowshop import FlowShopInstance

        rng = np.random.default_rng(7)
        a = FlowShopInstance(rng.uniform(1.0, 9.0, (6, 3)), name="dup")
        b = FlowShopInstance(rng.uniform(1.0, 9.0, (6, 3)), name="dup")
        return a, b

    def test_same_name_different_content_never_collides(self):
        from repro.problems import problem_of
        from repro.runtime.context import disable_seed_cache, enable_seed_cache

        a, b = self._flowshop_pair_sharing_a_name()
        cfg = CGAConfig(
            problem="flowshop", grid_rows=4, grid_cols=4, seed_with_minmin=True
        )
        neh_a = problem_of(a).seed_schedules(a, cfg)[0].s
        neh_b = problem_of(b).seed_schedules(b, cfg)[0].s
        assert not np.array_equal(neh_a, neh_b)  # pair discriminates the bug
        try:
            cache = enable_seed_cache()
            ctx_a = build_context(a, cfg, rng=0)
            ctx_b = build_context(b, cfg, rng=0)
            assert cache.stats()["misses"] == 2  # b must not reuse a's entry
        finally:
            disable_seed_cache()
        assert any(np.array_equal(row, neh_a) for row in ctx_a.pop.s)
        assert any(np.array_equal(row, neh_b) for row in ctx_b.pop.s)

    def test_equal_content_hits_and_matches_uncached_trajectory(self):
        from repro.runtime.context import disable_seed_cache, enable_seed_cache

        a, _ = self._flowshop_pair_sharing_a_name()
        cfg = CGAConfig(
            problem="flowshop", grid_rows=4, grid_cols=4, seed_with_minmin=True
        )
        uncached = build_context(a, cfg, rng=0)
        try:
            cache = enable_seed_cache()
            first = build_context(a, cfg, rng=0)
            second = build_context(a, cfg, rng=0)
            assert cache.stats() == dict(cache.stats(), hits=1, misses=1)
        finally:
            disable_seed_cache()
        assert np.array_equal(uncached.pop.s, first.pop.s)
        assert np.array_equal(first.pop.s, second.pop.s)

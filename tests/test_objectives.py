"""Tests for the objective functions."""

import numpy as np
import pytest

from repro.scheduling import (
    flowtime,
    load_imbalance,
    machine_loads,
    makespan,
    utilization,
)


@pytest.fixture
def simple_assignment(tiny_instance, rng):
    return rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks)


class TestMakespan:
    def test_equals_max_load(self, tiny_instance, simple_assignment):
        loads = machine_loads(tiny_instance, simple_assignment)
        assert makespan(tiny_instance, simple_assignment) == pytest.approx(loads.max())

    def test_single_machine_equals_total(self, tiny_instance):
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        assert makespan(tiny_instance, s) == pytest.approx(tiny_instance.etc[:, 0].sum())

    def test_moving_work_off_critical_machine_helps(self, tiny_instance):
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        before = makespan(tiny_instance, s)
        s2 = s.copy()
        s2[: tiny_instance.ntasks // 2] = 1
        assert makespan(tiny_instance, s2) < before


class TestFlowtime:
    def test_at_least_makespan_of_each_task(self, tiny_instance, simple_assignment):
        # flowtime sums per-task finish times; it is >= the largest ETC used
        ft = flowtime(tiny_instance, simple_assignment)
        used = tiny_instance.etc[np.arange(tiny_instance.ntasks), simple_assignment]
        assert ft >= used.max()

    def test_spt_order_minimizes_local_flowtime(self, tiny_instance):
        # flowtime of all tasks on machine 0 equals the SPT prefix-sum total
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        times = np.sort(tiny_instance.etc[:, 0])
        expected = np.cumsum(times).sum()
        assert flowtime(tiny_instance, s) == pytest.approx(expected)

    def test_empty_machines_contribute_nothing(self, tiny_instance):
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        ft_all0 = flowtime(tiny_instance, s)
        assert ft_all0 > 0

    def test_matches_per_machine_reference(self, rng):
        # the vectorized lexsort + segmented-cumsum path must agree with
        # the obvious per-machine SPT prefix-sum loop
        from repro.etc import make_instance

        inst = make_instance(64, 8, "i", seed=3)
        for _ in range(20):
            s = rng.integers(0, inst.nmachines, inst.ntasks, dtype=np.int32)
            expected = 0.0
            for m in range(inst.nmachines):
                times = np.sort(inst.etc_t[m, s == m])
                if times.size:
                    expected += float(np.cumsum(times).sum())
                    expected += float(inst.ready_times[m]) * times.size
            assert flowtime(inst, s) == pytest.approx(expected, rel=1e-12)

    def test_mean_flowtime_delegates(self, tiny_instance, simple_assignment, rng):
        # the weighted fitness must use this implementation, scaled
        from repro.cga.fitness import _mean_flowtime

        expected = flowtime(tiny_instance, simple_assignment) / tiny_instance.ntasks
        assert _mean_flowtime(simple_assignment, tiny_instance) == expected


class TestUtilization:
    def test_range(self, tiny_instance, simple_assignment):
        u = utilization(tiny_instance, simple_assignment)
        assert 0.0 < u <= 1.0

    def test_perfectly_balanced_is_one(self):
        from repro.etc import ETCMatrix

        inst = ETCMatrix(np.ones((4, 2)))
        s = np.array([0, 0, 1, 1], dtype=np.int32)
        assert utilization(inst, s) == pytest.approx(1.0)


class TestLoadImbalance:
    def test_zero_when_balanced(self):
        from repro.etc import ETCMatrix

        inst = ETCMatrix(np.ones((4, 2)))
        s = np.array([0, 0, 1, 1], dtype=np.int32)
        assert load_imbalance(inst, s) == pytest.approx(0.0)

    def test_one_when_machine_idle(self, tiny_instance):
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        assert load_imbalance(tiny_instance, s) == pytest.approx(1.0)

    def test_bounded(self, tiny_instance, simple_assignment):
        assert 0.0 <= load_imbalance(tiny_instance, simple_assignment) <= 1.0


class TestValidation:
    def test_validate_accepts_good(self, tiny_instance, simple_assignment):
        from repro.scheduling import validate_assignment

        validate_assignment(tiny_instance, simple_assignment)

    def test_validate_rejects_bad_range(self, tiny_instance):
        from repro.scheduling import InvalidScheduleError, validate_assignment

        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        s[-1] = 99
        with pytest.raises(InvalidScheduleError, match="non-existent"):
            validate_assignment(tiny_instance, s)

    def test_validate_rejects_float_dtype(self, tiny_instance):
        from repro.scheduling import InvalidScheduleError, validate_assignment

        with pytest.raises(InvalidScheduleError, match="integral"):
            validate_assignment(tiny_instance, np.zeros(tiny_instance.ntasks))

    def test_check_ct_detects_desync(self, tiny_instance, rng):
        from repro.scheduling import InvalidScheduleError, check_completion_times
        from repro.scheduling.schedule import compute_completion_times

        s = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks)
        ct = compute_completion_times(tiny_instance, s)
        ct[0] += 1.0
        with pytest.raises(InvalidScheduleError, match="out of sync"):
            check_completion_times(tiny_instance, s, ct)

"""Tests for the dynamic grid simulator."""

import numpy as np
import pytest

from repro.dynamic import (
    BatchArrival,
    DynamicGridSimulator,
    MachineJoin,
    MachineLeave,
    greedy_rescheduler,
)
from repro.dynamic.simulator import pacga_rescheduler


class TestEvents:
    def test_batch_validation(self):
        with pytest.raises(ValueError):
            BatchArrival(time=-1.0, workloads=(1.0,))
        with pytest.raises(ValueError):
            BatchArrival(time=0.0, workloads=())
        with pytest.raises(ValueError):
            BatchArrival(time=0.0, workloads=(0.0,))

    def test_join_validation(self):
        with pytest.raises(ValueError):
            MachineJoin(time=0.0, speed=0.0)

    def test_leave_validation(self):
        with pytest.raises(ValueError):
            MachineLeave(time=0.0, machine_id=-1)


class TestSingleBatch:
    def test_one_machine_runs_serially(self):
        sim = DynamicGridSimulator([10.0])
        stats = sim.run([BatchArrival(time=0.0, workloads=(10.0, 20.0, 30.0))])
        # durations 1, 2, 3 on one machine: makespan 6
        assert stats.makespan == pytest.approx(6.0)
        assert stats.completed == 3
        assert stats.reschedules == 1

    def test_two_equal_machines_balance(self):
        sim = DynamicGridSimulator([10.0, 10.0])
        stats = sim.run([BatchArrival(time=0.0, workloads=(10.0, 10.0, 10.0, 10.0))])
        assert stats.makespan == pytest.approx(2.0)

    def test_arrival_time_offsets_schedule(self):
        sim = DynamicGridSimulator([10.0])
        stats = sim.run([BatchArrival(time=5.0, workloads=(10.0,))])
        assert stats.makespan == pytest.approx(6.0)
        assert stats.mean_flowtime == pytest.approx(1.0)

    def test_flowtime_counts_waiting(self):
        sim = DynamicGridSimulator([10.0])
        stats = sim.run([BatchArrival(time=0.0, workloads=(10.0, 10.0))])
        # completions at 1 and 2 -> flows 1 and 2
        assert stats.mean_flowtime == pytest.approx(1.5)


class TestMachineDynamics:
    def test_join_speeds_up_pending_work(self):
        events_static = [BatchArrival(time=0.0, workloads=tuple([10.0] * 8))]
        events_join = events_static + [MachineJoin(time=0.5, speed=10.0)]
        static = DynamicGridSimulator([10.0]).run(events_static)
        joined = DynamicGridSimulator([10.0]).run(events_join)
        assert joined.makespan < static.makespan

    def test_leave_restarts_tasks(self):
        events = [
            BatchArrival(time=0.0, workloads=(10.0, 10.0, 10.0, 10.0)),
            MachineLeave(time=0.5, machine_id=1),
        ]
        stats = DynamicGridSimulator([10.0, 10.0]).run(events)
        assert stats.completed == 4
        assert stats.restarted >= 1  # machine 1's running task restarted
        assert stats.makespan > 2.0  # lost work costs time

    def test_cannot_drop_last_machine(self):
        sim = DynamicGridSimulator([10.0])
        with pytest.raises(ValueError, match="last machine"):
            sim.run(
                [
                    BatchArrival(time=0.0, workloads=(10.0,)),
                    MachineLeave(time=0.1, machine_id=0),
                ]
            )

    def test_unknown_machine_leave(self):
        sim = DynamicGridSimulator([10.0, 10.0])
        with pytest.raises(KeyError):
            sim.run([MachineLeave(time=0.0, machine_id=7)])

    def test_non_preemptive_running_task_stays(self):
        # one long task running; a join must not migrate it
        events = [
            BatchArrival(time=0.0, workloads=(100.0,)),
            MachineJoin(time=1.0, speed=1000.0),
        ]
        stats = DynamicGridSimulator([10.0]).run(events)
        # the task keeps its original machine: finish at 10, not ~1.1
        assert stats.makespan == pytest.approx(10.0)
        assert stats.migrations == 0


class TestRescheduling:
    def test_waiting_tasks_migrate_to_new_machine(self):
        events = [
            BatchArrival(time=0.0, workloads=(100.0, 100.0)),
            MachineJoin(time=1.0, speed=100.0),
        ]
        stats = DynamicGridSimulator([10.0]).run(events)
        # task 2 was queued (start at t=10); after the join it runs on the
        # fast machine instead: finish ~2 -> makespan 10 (first task)
        assert stats.makespan == pytest.approx(10.0)
        assert stats.migrations == 1

    def test_multiple_batches_accumulate(self):
        events = [
            BatchArrival(time=0.0, workloads=(10.0,)),
            BatchArrival(time=0.5, workloads=(10.0,)),
            BatchArrival(time=1.0, workloads=(10.0,)),
        ]
        stats = DynamicGridSimulator([10.0]).run(events)
        assert stats.completed == 3
        assert stats.makespan == pytest.approx(3.0)
        assert stats.reschedules == 3

    def test_timeline_recorded(self):
        events = [
            BatchArrival(time=0.0, workloads=(10.0, 10.0)),
            MachineJoin(time=0.2, speed=5.0),
        ]
        stats = DynamicGridSimulator([10.0]).run(events)
        assert len(stats.timeline) == 2
        t0, pending0, machines0 = stats.timeline[0]
        assert (t0, machines0) == (0.0, 1)
        assert stats.timeline[1][2] == 2

    def test_events_must_be_time_ordered_after_sort(self):
        # run() sorts, so out-of-order input is fine
        events = [
            MachineJoin(time=1.0, speed=5.0),
            BatchArrival(time=0.0, workloads=(10.0,)),
        ]
        stats = DynamicGridSimulator([10.0]).run(events)
        assert stats.completed == 1


class TestSchedulers:
    def test_pacga_rescheduler_beats_greedy_on_heterogeneous(self):
        rng = np.random.default_rng(5)
        workloads = tuple(rng.uniform(50, 500, size=40))
        speeds = [3.0, 10.0, 25.0, 7.0]
        events = [BatchArrival(time=0.0, workloads=workloads)]
        greedy = DynamicGridSimulator(speeds, greedy_rescheduler).run(events)
        smart = DynamicGridSimulator(
            speeds, pacga_rescheduler(max_evaluations=1500), seed=0
        ).run(events)
        assert smart.makespan <= greedy.makespan * 1.001

    def test_pacga_rescheduler_handles_tiny_pool(self):
        events = [BatchArrival(time=0.0, workloads=(10.0, 20.0))]
        stats = DynamicGridSimulator(
            [5.0, 9.0], pacga_rescheduler(max_evaluations=100)
        ).run(events)
        assert stats.completed == 2

"""``repro obs top``: snapshot loading + the pure dashboard frame."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.top import (
    HEAT_RAMP,
    MAX_HEAT_COLS,
    load_snapshot,
    render_frame,
    render_heatmap,
    top,
)

FIXTURE = Path(__file__).resolve().parent / "data" / "live.json"


@pytest.fixture
def snap():
    return json.loads(FIXTURE.read_text())


class TestLoadSnapshot:
    def test_file_and_directory_spellings(self, tmp_path, snap):
        assert load_snapshot(str(FIXTURE))["meta"]["engine"] == "async"
        bundle = tmp_path / "bundle"
        bundle.mkdir()
        (bundle / "live.json").write_text(json.dumps(snap))
        assert load_snapshot(str(bundle))["progress"]["evaluations"] == 10240

    def test_missing_source_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_snapshot(str(tmp_path / "nope"))


class TestRenderHeatmap:
    def test_ramp_orientation(self):
        # best (lowest) fitness gets the darkest glyph, worst the lightest
        row = {"shape": [1, 3], "fitness": [1.0, 2.0, 3.0]}
        assert render_heatmap(row) == ["@= "]

    def test_converged_grid_is_all_dark(self):
        row = {"shape": [2, 2], "fitness": [5.0] * 4}
        assert render_heatmap(row) == ["@@", "@@"]

    def test_wide_grids_are_subsampled(self):
        cols = 3 * MAX_HEAT_COLS
        row = {"shape": [1, cols], "fitness": list(range(cols))}
        lines = render_heatmap(row)
        assert len(lines) == 1
        assert len(lines[0]) <= MAX_HEAT_COLS


class TestRenderFrame:
    def test_fixture_frame_contents(self, snap):
        frame = render_frame(snap)
        assert "engine=async" in frame
        assert "instance=u_c_hihi.0" in frame
        assert "evals 10,240" in frame
        assert "[STALLS: 1]" in frame
        assert "operator success rates" in frame
        for phase in ("crossover", "mutation", "ls", "replacement"):
            assert f"  {phase}" in frame
        assert "31.0%" in frame  # 310/1000 ls successes
        assert "grid 8x8" in frame
        assert "takeover 12.5%" in frame
        assert f"[{HEAT_RAMP}]  worst -> best" in frame
        # one heatmap line per grid row, indented under the grid header
        expected = render_heatmap(snap["grid"])
        assert len(expected) == 8
        for line in expected:
            assert f"\n  {line}" in frame

    def test_recovered_stall_clears_banner(self, snap):
        # the fixture has 1 cumulative stall; once the watchdog also
        # counts a recovery the episode is over and the banner must go
        snap["metrics"]["counters"]["watchdog.recoveries"] = 1
        assert "[STALLS:" not in render_frame(snap)

    def test_second_episode_reraises_banner(self, snap):
        snap["metrics"]["counters"]["watchdog.stalls"] = 3
        snap["metrics"]["counters"]["watchdog.recoveries"] = 1
        assert "[STALLS: 2]" in render_frame(snap)

    def test_minimal_snapshot_renders(self):
        frame = render_frame({"updated_t_s": 0.5})
        assert "repro obs top" in frame
        assert "operator success rates" not in frame
        assert "grid" not in frame


class TestTopCli:
    def test_once_renders_fixture(self, capsys):
        assert main(["obs", "top", str(FIXTURE), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro obs top" in out
        assert "operator success rates" in out
        assert "worst -> best" in out

    def test_once_missing_source_exits_nonzero(self, tmp_path, capsys):
        assert main(["obs", "top", str(tmp_path / "gone"), "--once"]) == 1
        assert "cannot load a live snapshot" in capsys.readouterr().out

    def test_once_writes_to_explicit_stream(self, tmp_path):
        import io

        buf = io.StringIO()
        assert top(str(FIXTURE), once=True, out=buf) == 0
        assert "grid 8x8" in buf.getvalue()

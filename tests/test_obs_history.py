"""Run history registry, diffs, and the regression gate."""

import json

import pytest

from repro.obs import history as hist


def make_row(**over):
    row = {
        "run_id": "runA",
        "engine": "threads",
        "instance": "u_c_hihi.0",
        "n_threads": 2,
        "seed": 0,
        "best_fitness": 100.0,
        "evaluations": 2560,
        "generations": 10,
        "elapsed_s": 2.0,
        "evals_per_s": 1280.0,
        "stalls": 0,
        "lock_wait_s": 0.01,
        "interrupted": False,
    }
    row.update(over)
    return row


@pytest.fixture
def bundle(tmp_path):
    """A minimal finished-bundle directory."""
    out = tmp_path / "bundle"
    out.mkdir()
    (out / "meta.json").write_text(
        json.dumps(
            {
                "engine": "threads",
                "instance": "tiny",
                "n_threads": 2,
                "seed": 7,
                "result": {
                    "best_fitness": 81.5,
                    "evaluations": 1000,
                    "generations": 8,
                    "elapsed_s": 0.5,
                },
            }
        )
    )
    (out / "metrics.json").write_text(
        json.dumps(
            {
                "merged": {
                    "counters": {
                        "watchdog.stalls": 2.0,
                        "lock.read_wait_s_total": 0.25,
                        "lock.write_wait_s_total": 0.05,
                    }
                }
            }
        )
    )
    return out


class TestSummarize:
    def test_summarize_bundle(self, bundle):
        row = hist.summarize_bundle(bundle)
        assert row["run_id"] == "bundle"
        assert row["engine"] == "threads"
        assert row["best_fitness"] == 81.5
        assert row["evals_per_s"] == 2000.0
        assert row["stalls"] == 2
        assert row["lock_wait_s"] == pytest.approx(0.30)
        assert row["interrupted"] is False

    def test_partial_bundle_needs_only_meta(self, tmp_path):
        out = tmp_path / "partial"
        out.mkdir()
        (out / "meta.json").write_text(
            json.dumps({"engine": "async", "interrupted": {"type": "KeyboardInterrupt"}})
        )
        row = hist.summarize_bundle(out)
        assert row["interrupted"] is True
        assert row["stalls"] == 0
        assert row["evals_per_s"] is None

    def test_summarize_source_json_and_jsonl(self, tmp_path, bundle):
        as_json = tmp_path / "row.json"
        as_json.write_text(json.dumps(make_row()))
        assert hist.summarize_source(as_json)["run_id"] == "runA"
        assert hist.summarize_source(bundle)["engine"] == "threads"
        reg = tmp_path / "hist.jsonl"
        hist.append_history(reg, make_row(run_id="first"))
        hist.append_history(reg, make_row(run_id="second"))
        assert hist.summarize_source(reg)["run_id"] == "second"
        with pytest.raises(ValueError):
            empty = tmp_path / "empty.jsonl"
            empty.write_text("")
            hist.summarize_source(empty)


class TestResourceSummary:
    def test_meta_peaks_preferred(self, bundle):
        meta = json.loads((bundle / "meta.json").read_text())
        meta["resources"] = {"peak_rss_mb": 120.5, "peak_fds": 33}
        (bundle / "meta.json").write_text(json.dumps(meta))
        row = hist.summarize_bundle(bundle)
        assert row["peak_rss_mb"] == 120.5
        assert row["peak_fds"] == 33

    def test_recomputed_from_rows_for_crash_partial_bundle(self, bundle):
        # no meta["resources"] (never finalized) but streamed rows exist
        (bundle / "resources.jsonl").write_text(
            json.dumps({"role": "main", "rss_mb": 40.0, "fds": 10}) + "\n"
            + json.dumps({"role": "main", "rss_mb": 62.5, "fds": 9}) + "\n"
        )
        row = hist.summarize_bundle(bundle)
        assert row["peak_rss_mb"] == 62.5
        assert row["peak_fds"] == 10

    def test_none_without_resource_sampling(self, bundle):
        row = hist.summarize_bundle(bundle)
        assert row["peak_rss_mb"] is None
        assert row["peak_fds"] is None

    def test_row_fields_include_peaks(self):
        assert "peak_rss_mb" in hist.ROW_FIELDS
        assert "peak_fds" in hist.ROW_FIELDS


class TestResourceGate:
    def test_no_flags_no_findings(self):
        assert hist.check_resources(make_row()) == []

    def test_under_ceiling_passes(self):
        row = make_row(peak_rss_mb=100.0, peak_fds=20)
        assert hist.check_resources(row, max_rss_mb=256.0, max_fds=64) == []

    def test_rss_over_ceiling_fails(self):
        row = make_row(peak_rss_mb=300.0, peak_fds=20)
        problems = hist.check_resources(row, max_rss_mb=256.0)
        assert len(problems) == 1
        assert "peak RSS 300MB > ceiling 256MB" in problems[0]

    def test_fds_over_ceiling_fails(self):
        row = make_row(peak_rss_mb=10.0, peak_fds=200)
        problems = hist.check_resources(row, max_fds=64)
        assert len(problems) == 1
        assert "peak fd count 200 > ceiling 64" in problems[0]

    def test_missing_data_fails_explicitly(self):
        problems = hist.check_resources(make_row(), max_rss_mb=256.0, max_fds=64)
        assert len(problems) == 2
        assert all("resource sampling off?" in p for p in problems)

    def test_cli_max_rss_gate_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        row = tmp_path / "row.json"
        row.write_text(json.dumps(make_row(peak_rss_mb=100.0, peak_fds=16)))
        base = tmp_path / "base.json"
        base.write_text(json.dumps(make_row()))
        ok = main(
            ["obs", "check", str(row), "--baseline", str(base), "--max-rss-mb", "256"]
        )
        assert ok == 0
        bad = main(
            ["obs", "check", str(row), "--baseline", str(base), "--max-rss-mb", "50"]
        )
        assert bad == 1
        assert "peak RSS 100MB > ceiling 50MB" in capsys.readouterr().err


class TestRegistry:
    def test_append_and_load(self, tmp_path):
        reg = tmp_path / "runs.jsonl"
        stored = hist.append_history(reg, make_row())
        assert stored["recorded_unix"] is not None
        rows = hist.load_history(reg)
        assert len(rows) == 1 and rows[0]["run_id"] == "runA"
        hist.append_history(reg, make_row(run_id="runB"))
        assert [r["run_id"] for r in hist.load_history(reg)] == ["runA", "runB"]

    def test_load_missing_is_empty(self, tmp_path):
        assert hist.load_history(tmp_path / "nope.jsonl") == []

    def test_render_history(self):
        text = hist.render_history([make_row(), make_row(run_id="runB")], limit=1)
        assert "runB" in text and "runA" not in text
        assert "makespan" in text
        assert hist.render_history([]) == "(history is empty)"


class TestDiff:
    def test_diff_directions(self):
        a = make_row()
        b = make_row(run_id="runB", best_fitness=90.0, evals_per_s=640.0)
        by_field = {d["field"]: d for d in hist.diff_rows(a, b)}
        assert by_field["best_fitness"]["better"] is True  # lower makespan
        assert by_field["evals_per_s"]["better"] is False  # lower throughput
        assert by_field["best_fitness"]["delta_pct"] == pytest.approx(-10.0)

    def test_render_diff_markers(self):
        a, b = make_row(), make_row(run_id="runB", best_fitness=120.0)
        text = hist.render_diff(a, b)
        assert "'+' = B better" in text
        assert "+20.0% !" in text


class TestCheckRow:
    def test_identical_passes(self):
        assert hist.check_row(make_row(), make_row()) == []

    def test_twenty_percent_makespan_regression_fails(self):
        """Acceptance scenario: a synthetic 20% quality regression must
        trip the default 10% gate."""
        cur = make_row(best_fitness=120.0)
        problems = hist.check_row(cur, make_row(), tolerance_pct=10.0)
        assert len(problems) == 1
        assert "makespan regression" in problems[0]

    def test_makespan_within_tolerance_passes(self):
        cur = make_row(best_fitness=109.0)
        assert hist.check_row(cur, make_row(), tolerance_pct=10.0) == []

    def test_throughput_floor(self):
        cur = make_row(evals_per_s=600.0)  # >50% drop vs 1280
        problems = hist.check_row(cur, make_row())
        assert any("throughput regression" in p for p in problems)
        # a looser throughput-specific tolerance lets it pass
        assert (
            hist.check_row(cur, make_row(), throughput_tolerance_pct=60.0) == []
        )

    def test_stalls_and_interrupt_fail_outright(self):
        assert any(
            "stall" in p for p in hist.check_row(make_row(stalls=3), make_row())
        )
        assert any(
            "interrupted" in p
            for p in hist.check_row(make_row(interrupted=True), make_row())
        )

    def test_missing_baseline_fields_skip(self):
        baseline = {"run_id": "sparse"}
        assert hist.check_row(make_row(best_fitness=999.0), baseline) == []


class TestBenchBaseline:
    def make_bench(self, tmp_path, **extra):
        data = {
            "instance": "u_c_hihi.0",
            "engines_evals_per_s": {"threads(2)": 1000.0, "simulated(4)": 9000.0},
        }
        data.update(extra)
        path = tmp_path / "BENCH_throughput.json"
        path.write_text(json.dumps(data))
        return path

    def test_engine_entry_selected(self, tmp_path):
        path = self.make_bench(tmp_path)
        base = hist.load_baseline(path, row=make_row())
        assert base["evals_per_s"] == 1000.0
        assert base["run_id"] == "baseline:threads(2)"
        assert base["best_fitness"] is None  # no quality entries committed

    def test_sim_alias(self, tmp_path):
        path = self.make_bench(tmp_path)
        base = hist.load_baseline(path, row=make_row(engine="sim", n_threads=4))
        assert base["evals_per_s"] == 9000.0

    def test_quality_entry_used_when_present(self, tmp_path):
        path = self.make_bench(tmp_path, quality_makespan={"threads(2)": 100.0})
        base = hist.load_baseline(path, row=make_row())
        assert base["best_fitness"] == 100.0
        assert hist.check_row(make_row(best_fitness=130.0), base) != []

    def test_unknown_engine_raises(self, tmp_path):
        path = self.make_bench(tmp_path)
        with pytest.raises(KeyError, match="threads\\(8\\)"):
            hist.load_baseline(path, row=make_row(n_threads=8))

    def test_committed_bench_file_gates_throughput(self, tmp_path):
        """The repo's committed BENCH_throughput.json works as a check
        baseline for a threads(2) run."""
        from pathlib import Path

        bench = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
        row = make_row(evals_per_s=10**9)  # absurdly fast: must pass the floor
        base = hist.load_baseline(bench, row=row)
        assert base["evals_per_s"] > 0
        assert hist.check_row(row, base, throughput_tolerance_pct=50.0) == []


class TestParallelSpeedupGate:
    def test_all_ratios_above_floor_pass(self):
        payload = {"parallel_speedup": {"shm(2)/shm(1)": 1.4, "shm(4)/shm(1)": 2.1}}
        assert hist.check_parallel_speedup(payload, 1.0) == []

    def test_ratio_below_floor_fails(self):
        payload = {"parallel_speedup": {"shm(2)/shm(1)": 0.85}}
        problems = hist.check_parallel_speedup(payload, 1.0)
        assert len(problems) == 1
        assert "parallel speedup regression" in problems[0]
        assert "shm(2)/shm(1)" in problems[0]

    def test_missing_section_fails_outright(self):
        assert hist.check_parallel_speedup({}, 1.0) != []
        assert hist.check_parallel_speedup({"parallel_speedup": {}}, 1.0) != []

    def test_non_numeric_ratio_fails(self):
        payload = {"parallel_speedup": {"shm(2)/shm(1)": "fast"}}
        problems = hist.check_parallel_speedup(payload, 1.0)
        assert "not numeric" in problems[0]

    def test_cli_min_parallel_speedup_gates_bench_baseline(self, tmp_path, capsys):
        from repro.cli import main

        bench = tmp_path / "BENCH_throughput.json"
        run = tmp_path / "run.json"
        run.write_text(json.dumps(make_row(engine="shm", evals_per_s=1000.0)))

        bench.write_text(
            json.dumps(
                {
                    "instance": "u_c_hihi.0",
                    "engines_evals_per_s": {"shm(2)": 1000.0},
                    "parallel_speedup": {"shm(2)/shm(1)": 1.3},
                }
            )
        )
        args = ["obs", "check", str(run), "--baseline", str(bench)]
        assert main([*args, "--min-parallel-speedup", "1.0"]) == 0
        capsys.readouterr()

        bench.write_text(
            json.dumps(
                {
                    "instance": "u_c_hihi.0",
                    "engines_evals_per_s": {"shm(2)": 1000.0},
                    "parallel_speedup": {"shm(2)/shm(1)": 0.7},
                }
            )
        )
        assert main([*args, "--min-parallel-speedup", "1.0"]) == 1
        assert "parallel speedup regression" in capsys.readouterr().err
        # without the flag the same baseline passes (speedup not gated)
        assert main(args) == 0
        capsys.readouterr()

    def test_cli_flag_fails_when_no_section_anywhere(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_row()))
        run = tmp_path / "run.json"
        run.write_text(json.dumps(make_row(run_id="runB")))
        rc = main(
            [
                "obs",
                "check",
                str(run),
                "--baseline",
                str(baseline),
                "--min-parallel-speedup",
                "1.0",
            ]
        )
        assert rc == 1
        assert "no parallel_speedup section" in capsys.readouterr().err


class TestDynamicsGate:
    def test_no_flags_no_findings(self):
        assert hist.check_dynamics(make_row()) == ([], [])

    def test_ls_rate_above_floor_passes(self):
        problems, _ = hist.check_dynamics(
            make_row(ls_success_rate=0.4), min_ls_success_rate=0.2
        )
        assert problems == []

    def test_ls_rate_below_floor_fails(self):
        problems, _ = hist.check_dynamics(
            make_row(ls_success_rate=0.05), min_ls_success_rate=0.2
        )
        assert len(problems) == 1
        assert "LS success rate regression" in problems[0]

    def test_missing_attribution_fails_the_gate_explicitly(self):
        """A pre-dynamics bundle (no op.ls.* counters) must not pass the
        gate silently."""
        problems, _ = hist.check_dynamics(make_row(), min_ls_success_rate=0.2)
        assert any("no LS attribution" in p for p in problems)

    def test_entropy_collapse_warns_but_does_not_fail(self):
        problems, warnings = hist.check_dynamics(make_row(final_entropy=0.01))
        assert problems == []
        assert len(warnings) == 1
        assert "entropy collapse" in warnings[0]
        assert hist.check_dynamics(make_row(final_entropy=0.5)) == ([], [])

    def test_summarize_bundle_extracts_dynamics_fields(self, tmp_path):
        out = tmp_path / "dynbundle"
        out.mkdir()
        (out / "meta.json").write_text(json.dumps({"engine": "async"}))
        (out / "metrics.json").write_text(
            json.dumps(
                {
                    "merged": {
                        "counters": {
                            "op.ls.attempts": 100.0,
                            "op.ls.successes": 25.0,
                        }
                    }
                }
            )
        )
        (out / "grid.jsonl").write_text(
            json.dumps({"fitness_entropy": 0.8})
            + "\n"
            + json.dumps({"fitness_entropy": 0.03})
            + "\n"
        )
        row = hist.summarize_bundle(out)
        assert row["ls_success_rate"] == 0.25
        assert row["final_entropy"] == 0.03

    def test_bundle_without_dynamics_yields_none_fields(self, bundle):
        row = hist.summarize_bundle(bundle)
        assert row["ls_success_rate"] is None
        assert row["final_entropy"] is None

    def test_cli_min_ls_success_rate_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_row()))
        run = tmp_path / "run.json"
        args = ["obs", "check", str(run), "--baseline", str(baseline)]

        run.write_text(json.dumps(make_row(ls_success_rate=0.4)))
        assert main([*args, "--min-ls-success-rate", "0.2"]) == 0
        capsys.readouterr()

        run.write_text(json.dumps(make_row(ls_success_rate=0.1)))
        assert main([*args, "--min-ls-success-rate", "0.2"]) == 1
        assert "LS success rate regression" in capsys.readouterr().err

        # without the flag the same run passes (rate not gated)
        assert main(args) == 0
        capsys.readouterr()

    def test_cli_entropy_collapse_warns_without_failing(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_row()))
        run = tmp_path / "run.json"
        run.write_text(json.dumps(make_row(final_entropy=0.001)))
        assert (
            main(["obs", "check", str(run), "--baseline", str(baseline)]) == 0
        )
        captured = capsys.readouterr()
        assert "WARNING: entropy collapse" in captured.err
        assert "OK: within tolerance" in captured.out


class TestObsCli:
    def test_ingest_history_diff_check(self, tmp_path, bundle, capsys):
        from repro.cli import main

        reg = tmp_path / "runs.jsonl"
        assert main(["obs", "ingest", str(bundle), "--history", str(reg)]) == 0
        out = capsys.readouterr().out
        assert "recorded bundle" in out

        assert main(["obs", "history", str(reg)]) == 0
        assert "bundle" in capsys.readouterr().out

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(make_row()))
        b.write_text(json.dumps(make_row(run_id="runB", best_fitness=90.0)))
        assert main(["obs", "diff", str(a), str(b)]) == 0
        assert "best_fitness" in capsys.readouterr().out

    def test_check_exit_codes(self, tmp_path, capsys):
        """Acceptance: nonzero on a synthetic 20% makespan regression,
        zero against a matching baseline."""
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_row()))

        good = tmp_path / "good.json"
        good.write_text(json.dumps(make_row(run_id="good")))
        assert main(["obs", "check", str(good), "--baseline", str(baseline)]) == 0
        assert "OK: within tolerance" in capsys.readouterr().out

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(make_row(run_id="bad", best_fitness=120.0)))
        rc = main(
            ["obs", "check", str(bad), "--baseline", str(baseline), "--tolerance", "10"]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "REGRESSION: makespan regression" in captured.err

    def test_check_against_bench_shape(self, tmp_path, capsys):
        from repro.cli import main

        bench = tmp_path / "BENCH_throughput.json"
        bench.write_text(
            json.dumps(
                {
                    "instance": "u_c_hihi.0",
                    "engines_evals_per_s": {"threads(2)": 1000.0},
                }
            )
        )
        run = tmp_path / "run.json"
        run.write_text(json.dumps(make_row(evals_per_s=950.0)))
        assert main(["obs", "check", str(run), "--baseline", str(bench)]) == 0
        run.write_text(json.dumps(make_row(evals_per_s=100.0)))
        assert main(["obs", "check", str(run), "--baseline", str(bench)]) == 1
        capsys.readouterr()

    def test_watch_once_cli(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "live.json").write_text(
            json.dumps({"updated_t_s": 1.0, "meta": {}, "progress": {}, "metrics": {}})
        )
        assert main(["obs", "watch", str(tmp_path), "--once"]) == 0
        assert "live run" in capsys.readouterr().out

"""Edge-case tests for engine configuration branches."""

import numpy as np

from repro.cga import (
    AsyncCGA,
    CGAConfig,
    Population,
    StopCondition,
    evolve_individual,
    neighbor_table,
)
from repro.cga.grid import Grid2D


class TestProbabilityBranches:
    def test_zero_crossover_clones_best_parent(self, tiny_instance, rng):
        pop = Population(tiny_instance, Grid2D(4, 4))
        pop.init_random(rng)
        config = CGAConfig(
            grid_rows=4, grid_cols=4, p_comb=0.0, p_mut=0.0, local_search=None,
            seed_with_minmin=False,
        )
        ops = config.resolve()
        tbl = neighbor_table(Grid2D(4, 4), "l5")
        before = pop.s.copy()
        fitness = pop.fitness.copy()
        evolve_individual(pop, 0, tbl[0], ops, rng)
        # offspring is a clone of the best neighbor: either no change
        # (cell 0 was the best) or cell 0 now equals a former neighbor
        if not np.array_equal(pop.s[0], before[0]):
            assert any(np.array_equal(pop.s[0], before[j]) for j in tbl[0][1:])
            assert pop.fitness[0] <= fitness[0]

    def test_zero_ls_probability_skips_ls(self, tiny_instance):
        # identical seeds: p_ls=0 vs local_search=None must coincide
        base = CGAConfig(
            grid_rows=4, grid_cols=4, ls_iterations=5, seed_with_minmin=False
        )
        a = AsyncCGA(tiny_instance, base.with_(p_ls=0.0), rng=3).run(
            StopCondition(max_generations=3)
        )
        # p_ls=0 never draws the LS rng beyond the gate; the gate draw
        # itself must still be consumed for stream alignment, so we only
        # check that LS had no effect on quality trends, not bit-equality
        b = AsyncCGA(tiny_instance, base.with_(p_ls=1.0), rng=3).run(
            StopCondition(max_generations=3)
        )
        assert b.best_fitness <= a.best_fitness * 1.1

    def test_ls_candidates_restricts_targets(self, small_instance, rng):
        # with a single candidate machine, H2LL can only ever move work
        # to the least loaded machine; sanity-check through the config
        config = CGAConfig(
            grid_rows=4, grid_cols=4, ls_candidates=1, ls_iterations=3,
            seed_with_minmin=False,
        )
        eng = AsyncCGA(small_instance, config, rng=1)
        res = eng.run(StopCondition(max_generations=3))
        eng.pop.check_invariants()
        assert res.best_fitness > 0


class TestStopBehaviour:
    def test_eval_budget_exact(self, tiny_instance):
        config = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=0,
                           seed_with_minmin=False)
        res = AsyncCGA(tiny_instance, config, rng=0).run(
            StopCondition(max_evaluations=37)
        )
        assert res.evaluations == 37

    def test_generation_and_eval_budgets_combined(self, tiny_instance):
        config = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=0,
                           seed_with_minmin=False)
        res = AsyncCGA(tiny_instance, config, rng=0).run(
            StopCondition(max_evaluations=1000, max_generations=2)
        )
        assert res.generations == 2
        assert res.evaluations == 32


class TestCliParallelEngines:
    def test_threads_engine_via_cli(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "solve",
                    "--engine",
                    "threads",
                    "--threads",
                    "2",
                    "--instance",
                    "u_i_hilo.0",
                    "--evals",
                    "512",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "threads" in out

    def test_processes_engine_via_cli(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "solve",
                    "--engine",
                    "processes",
                    "--threads",
                    "2",
                    "--instance",
                    "u_i_hilo.0",
                    "--evals",
                    "512",
                ]
            )
            == 0
        )
        assert "best makespan" in capsys.readouterr().out

"""Worker-heartbeat watchdog: stall detection, engine integration."""

import json

import pytest

from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.cga.hooks import EngineHooks, as_hooks
from repro.obs import Observer
from repro.obs.metrics import MetricRecorder
from repro.obs.trace import Tracer
from repro.obs.watchdog import HeartbeatBoard, StallEvent, Watchdog
from repro.parallel import ThreadedPACGA


CFG = CGAConfig(grid_rows=6, grid_cols=6, ls_iterations=2, seed_with_minmin=False)


class TestHeartbeatBoard:
    def test_beat_and_read(self):
        board = HeartbeatBoard(3)
        board.beat(0)
        board.beat(0)
        board.beat(2)
        assert board.read() == [2, 0, 1]
        assert len(board) == 3

    def test_done_flags(self):
        board = HeartbeatBoard(2)
        assert board.active() == [True, True]
        board.mark_done(1)
        assert board.active() == [True, False]

    def test_external_buffers(self):
        counters, done = [5, 5], [0, 0]
        board = HeartbeatBoard(2, counters=counters, done=done)
        board.beat(0)
        assert counters == [6, 5]

    def test_mismatched_buffers_rejected(self):
        with pytest.raises(ValueError):
            HeartbeatBoard(2, counters=[0, 0], done=[0])


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestWatchdog:
    def test_frozen_worker_flagged_once_within_deadline(self):
        """The satellite scenario: worker 1's heartbeat is pinned."""
        clock = FakeClock()
        board = HeartbeatBoard(2)
        seen = []
        dog = Watchdog(board, deadline_s=1.0, on_stall=seen.append, clock=clock)

        # both healthy inside the deadline
        clock.t = 0.5
        board.beat(0)
        board.beat(1)
        assert dog.poll() == []

        # worker 1 freezes; worker 0 keeps beating (still under deadline)
        for t in (1.0, 1.3):
            clock.t = t
            board.beat(0)
            assert dog.poll() == []
        clock.t = 1.6  # 1.1s since worker 1's last beat; w0 beat just now
        board.beat(0)
        events = dog.poll()
        assert [e.worker for e in events] == [1]
        assert events[0].stalled_s >= 1.0
        assert not events[0].recovered
        assert dog.stalled_workers == [1]
        # flagged once per episode, not on every poll
        clock.t = 2.0
        board.beat(0)
        assert dog.poll() == []
        assert [e.worker for e in seen] == [1]

    def test_recovery_rearms(self):
        clock = FakeClock()
        board = HeartbeatBoard(1)
        dog = Watchdog(board, deadline_s=1.0, clock=clock)
        clock.t = 1.5
        assert [e.recovered for e in dog.poll()] == [False]
        board.beat(0)
        clock.t = 1.6
        recov = dog.poll()
        assert [e.recovered for e in recov] == [True]
        assert dog.stalled_workers == []
        # a second freeze is a new episode
        clock.t = 3.0
        assert [e.recovered for e in dog.poll()] == [False]

    def test_done_worker_never_flagged(self):
        clock = FakeClock()
        board = HeartbeatBoard(2)
        board.mark_done(0)
        dog = Watchdog(board, deadline_s=0.5, clock=clock)
        clock.t = 10.0
        assert [e.worker for e in dog.poll()] == [1]

    def test_events_land_in_metrics_and_trace(self):
        clock = FakeClock()
        board = HeartbeatBoard(2)
        rec = MetricRecorder("watchdog")
        tracer = Tracer()
        dog = Watchdog(
            board,
            deadline_s=1.0,
            recorder=rec,
            tracer_for=lambda w: tracer.thread(w),
            clock=clock,
        )
        clock.t = 2.0
        dog.poll()
        board.beat(0)
        clock.t = 2.5
        dog.poll()
        assert rec.counters["watchdog.stalls"] == 2
        assert rec.counters["watchdog.recoveries"] == 1
        assert rec.gauges["watchdog.stalled_s.worker0"] == 0.0
        assert rec.gauges["watchdog.stalled_s.worker1"] == 2.0
        names = [e["name"] for e in tracer.export()["traceEvents"] if e["ph"] == "i"]
        assert names.count("stall") == 2 and names.count("recovery") == 1

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            Watchdog(HeartbeatBoard(1), deadline_s=0.0)


class TestStackCaptureEscalation:
    def test_capture_fires_on_stall_before_on_stall(self):
        """The escalation contract: the stack capture runs for stalls
        only, and *before* the engine's on_stall reaction (which may
        kill the worker)."""
        clock = FakeClock()
        board = HeartbeatBoard(2)
        order = []
        dog = Watchdog(
            board,
            deadline_s=1.0,
            on_stall=lambda e: order.append(("on_stall", e.worker, e.recovered)),
            stack_capture=lambda e: order.append(("capture", e.worker, e.recovered)),
            clock=clock,
        )
        clock.t = 1.5
        board.beat(0)
        dog.poll()
        assert order == [("capture", 1, False), ("on_stall", 1, False)]

        # recovery: on_stall still fires, the capture must not
        board.beat(1)
        clock.t = 1.6
        dog.poll()
        assert order[-1] == ("on_stall", 1, True)
        assert [o for o in order if o[0] == "capture"] == [("capture", 1, False)]

    def test_capture_exception_swallowed(self):
        clock = FakeClock()
        board = HeartbeatBoard(1)
        seen = []

        def broken_capture(event):
            raise OSError("disk full")

        dog = Watchdog(
            board,
            deadline_s=1.0,
            on_stall=seen.append,
            stack_capture=broken_capture,
            clock=clock,
        )
        clock.t = 2.0
        events = dog.poll()  # must not raise
        assert [e.worker for e in events] == [0]
        assert [e.worker for e in seen] == [0]

    def test_stall_and_recovery_land_in_flight_ring(self, tmp_path):
        from repro.obs.flight import FlightRecorder

        clock = FakeClock()
        board = HeartbeatBoard(1)
        ring = FlightRecorder(tmp_path / "main.bin", slots=16)
        dog = Watchdog(board, deadline_s=1.0, clock=clock, flight=ring)
        clock.t = 1.5
        dog.poll()
        board.beat(0)
        clock.t = 1.6
        dog.poll()
        kinds = [(e["kind"], e["msg"]) for e in ring.events()]
        ring.close()
        assert kinds == [("stall", "w0"), ("recovery", "w0")]

    def test_observer_wires_capture_into_bundle(
        self, tiny_instance, tmp_path, monkeypatch
    ):
        """Watchdog -> stack-capture escalation e2e: pin a ThreadedPACGA
        worker's heartbeat and assert the stalled worker's stack dump
        lands in the bundle's flight dir."""
        original_beat = HeartbeatBoard.beat

        def pinned_beat(self, worker):
            if worker != 1:  # worker 1's heartbeat never advances
                original_beat(self, worker)

        monkeypatch.setattr(HeartbeatBoard, "beat", pinned_beat)

        out = tmp_path / "bundle"
        obs = Observer(
            out=out, sample_every_evals=10**9, stall_deadline_s=0.1, flight=True
        )
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0, obs=obs)
        with obs:
            eng.run(StopCondition(wall_time_s=0.8))

        stacks = out / "flight" / "stacks-main.txt"
        assert stacks.exists(), "stall escalation must dump stacks into the bundle"
        text = stacks.read_text()
        assert "stall w1" in text
        assert "=== stack dump" in text
        # the stall made it into the flight ring too
        from repro.obs.flight import load_flight_dir

        events = load_flight_dir(out)["main"]
        assert any(e["kind"] == "stall" and e["msg"] == "w1" for e in events)


class TestHooksProtocol:
    def test_on_stall_slot(self):
        hooks = EngineHooks(on_stall=lambda e, ev: None)
        assert hooks.on_stall is not None
        assert "on_stall" in repr(hooks)
        assert as_hooks(hooks) is hooks
        assert as_hooks(None).on_stall is None


class TestThreadedIntegration:
    def test_injected_frozen_worker_reports_stall(self, tiny_instance, tmp_path, monkeypatch):
        """A ThreadedPACGA worker whose heartbeat is pinned is reported
        as a stall event within the configured deadline, and
        EngineHooks.on_stall fires."""
        original_beat = HeartbeatBoard.beat

        def pinned_beat(self, worker):
            if worker != 1:  # worker 1's heartbeat never advances
                original_beat(self, worker)

        monkeypatch.setattr(HeartbeatBoard, "beat", pinned_beat)

        stalls = []
        hooks = EngineHooks(on_stall=lambda engine, event: stalls.append(event))
        out = tmp_path / "bundle"
        obs = Observer(out=out, sample_every_evals=10**9, stall_deadline_s=0.1)
        eng = ThreadedPACGA(
            tiny_instance, CFG.with_(n_threads=2), seed=0, obs=obs, hooks=hooks
        )
        eng.run(StopCondition(wall_time_s=0.8))
        obs.finalize()

        assert stalls, "on_stall hook must fire for the frozen worker"
        assert all(isinstance(e, StallEvent) for e in stalls)
        assert {e.worker for e in stalls} == {1}
        assert stalls[0].stalled_s >= 0.1

        metrics = json.loads((out / "metrics.json").read_text())
        merged = metrics["merged"]["counters"]
        assert merged["watchdog.stalls"] >= 1
        trace = json.loads((out / "trace.json").read_text())
        stall_events = [
            e for e in trace["traceEvents"] if e["ph"] == "i" and e["name"] == "stall"
        ]
        assert stall_events and all(e["tid"] == 1 for e in stall_events)

    def test_healthy_run_reports_no_stall(self, tiny_instance):
        obs = Observer(out=None, sample_every_evals=10**9, stall_deadline_s=5.0)
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0, obs=obs)
        eng.run(StopCondition(max_generations=3))
        assert obs.registry.merged().counters.get("watchdog.stalls", 0) == 0

    def test_workers_done_not_stalled_after_budget(self, tiny_instance):
        # deadline far shorter than the post-run teardown: done workers
        # must be exempt, so no stall is recorded after the budget ends
        obs = Observer(out=None, sample_every_evals=10**9, stall_deadline_s=0.05)
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0, obs=obs)
        eng.run(StopCondition(max_generations=2))
        import time

        time.sleep(0.12)  # past the deadline; watchdog already stopped
        assert obs.registry.merged().counters.get("watchdog.stalls", 0) == 0


class TestAsyncIntegration:
    def test_async_heartbeat_and_watchdog_lifecycle(self, tiny_instance):
        # a healthy sequential run under a generous deadline: the board
        # beats per generation and the watchdog detaches cleanly
        obs = Observer(out=None, sample_every_evals=36, stall_deadline_s=10.0)
        eng = AsyncCGA(tiny_instance, CFG, rng=0, obs=obs)
        res = eng.run(StopCondition(max_generations=4))
        assert res.generations == 4
        assert obs.watchdog is None  # stopped and detached
        assert obs.registry.merged().counters.get("watchdog.stalls", 0) == 0

    def test_no_board_when_runtime_not_wanted(self, tiny_instance):
        obs = Observer(out=None, sample_every_evals=36)
        assert not obs.runtime_wanted
        eng = AsyncCGA(tiny_instance, CFG, rng=0, obs=obs)
        eng.run(StopCondition(max_generations=2))
        assert obs.watchdog is None and obs.publisher is None

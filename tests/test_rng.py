"""Tests for the seed-tree utilities."""

import numpy as np
import pytest

from repro.rng import (
    DEFAULT_SEED,
    hash_name,
    interleave_choice,
    make_rng,
    seed_for_run,
    spawn_rngs,
    stream_for,
)


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_from_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_from_seedsequence(self):
        ss = np.random.SeedSequence(5)
        a = make_rng(ss).random()
        b = make_rng(np.random.SeedSequence(5)).random()
        assert a == b


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_streams_differ(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_deterministic(self):
        xs = [g.random() for g in spawn_rngs(3, 3)]
        ys = [g.random() for g in spawn_rngs(3, 3)]
        assert xs == ys

    def test_zero_spawn_ok(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSeedTree:
    def test_runs_independent(self):
        a = np.random.default_rng(seed_for_run(0, 0)).random()
        b = np.random.default_rng(seed_for_run(0, 1)).random()
        assert a != b

    def test_run_stable_regardless_of_neighbors(self):
        assert (
            np.random.default_rng(seed_for_run(9, 5)).random()
            == np.random.default_rng(seed_for_run(9, 5)).random()
        )

    def test_negative_run_raises(self):
        with pytest.raises(ValueError):
            seed_for_run(0, -1)

    def test_stream_for_path_sensitivity(self):
        assert stream_for(1, 0, 0).random() != stream_for(1, 0, 1).random()

    def test_stream_for_negative_path(self):
        with pytest.raises(ValueError):
            stream_for(1, -2)


class TestHashName:
    def test_stable_known_value(self):
        # FNV-1a of "a" is a published constant
        assert hash_name("a") == 0xAF63DC4C8601EC8C

    def test_distinct_names(self):
        assert hash_name("u_c_hihi.0") != hash_name("u_c_hilo.0")

    def test_empty_string(self):
        assert hash_name("") == 0xCBF29CE484222325


class TestInterleaveChoice:
    def test_degenerate_single(self, rng):
        assert interleave_choice(rng, [1.0]) == 0

    def test_zero_weight_never_chosen(self, rng):
        picks = {interleave_choice(rng, [0.0, 1.0]) for _ in range(50)}
        assert picks == {1}

    def test_rejects_all_zero(self, rng):
        with pytest.raises(ValueError):
            interleave_choice(rng, [0.0, 0.0])

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            interleave_choice(rng, [1.0, -0.1])

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            interleave_choice(rng, [])


def test_default_seed_is_int():
    assert isinstance(DEFAULT_SEED, int)

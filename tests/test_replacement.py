"""Tests for replacement policies."""

from repro.cga.replacement import (
    REPLACEMENTS,
    replace_always,
    replace_if_better,
    replace_if_not_worse,
)


class TestReplaceIfBetter:
    def test_strict_improvement_accepted(self):
        assert replace_if_better(1.0, 2.0)

    def test_tie_rejected(self):
        assert not replace_if_better(2.0, 2.0)

    def test_worse_rejected(self):
        assert not replace_if_better(3.0, 2.0)


class TestReplaceIfNotWorse:
    def test_tie_accepted(self):
        assert replace_if_not_worse(2.0, 2.0)

    def test_worse_rejected(self):
        assert not replace_if_not_worse(2.1, 2.0)

    def test_better_accepted(self):
        assert replace_if_not_worse(1.0, 2.0)


class TestReplaceAlways:
    def test_accepts_everything(self):
        assert replace_always(99.0, 1.0)
        assert replace_always(1.0, 99.0)


def test_registry():
    assert set(REPLACEMENTS) == {"if-better", "if-not-worse", "always"}

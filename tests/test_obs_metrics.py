"""Tests for repro.obs.metrics — recorders, histograms, exact merging."""

import math

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS_US, Histogram, MetricRecorder, MetricsRegistry


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_bucketing(self):
        h = Histogram([1.0, 10.0, 100.0])
        for v in (0.5, 1.0, 5.0, 100.0, 1e6):
            h.observe(v)
        # inclusive upper edges; 1e6 lands in the overflow bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(0.5 + 1.0 + 5.0 + 100.0 + 1e6)
        assert h.min == 0.5 and h.max == 1e6

    def test_mean_and_quantile(self):
        h = Histogram([1.0, 2.0, 4.0, 8.0])
        for v in (0.5, 1.5, 3.0, 6.0):
            h.observe(v)
        assert h.mean == pytest.approx(11.0 / 4.0)
        assert h.quantile(0.0) == 0.0 or h.quantile(0.0) <= h.quantile(1.0)
        assert h.quantile(1.0) <= h.max
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram(self):
        h = Histogram([1.0])
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        d = h.to_dict()
        assert d["min"] is None and d["max"] is None

    def test_merge_is_exact(self):
        # merging per-thread histograms must equal one global histogram
        bounds = [1.0, 10.0, 100.0, 1000.0]
        samples_a = [0.1, 5.0, 50.0, 5000.0]
        samples_b = [2.0, 20.0, 200.0]
        h_all = Histogram(bounds)
        h_a, h_b = Histogram(bounds), Histogram(bounds)
        for v in samples_a:
            h_a.observe(v)
            h_all.observe(v)
        for v in samples_b:
            h_b.observe(v)
            h_all.observe(v)
        h_a.merge(h_b)
        assert h_a.counts == h_all.counts
        assert h_a.count == h_all.count
        assert h_a.total == pytest.approx(h_all.total)
        assert h_a.min == h_all.min and h_a.max == h_all.max

    def test_merge_requires_identical_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram([1.0, 2.0]).merge(Histogram([1.0, 3.0]))


class TestMetricRecorder:
    def test_counters_and_gauges(self):
        rec = MetricRecorder("7")
        rec.inc("evals")
        rec.inc("evals", 4.0)
        rec.set_gauge("temp", 0.5)
        rec.set_gauge("temp", 0.25)
        assert rec.counters["evals"] == 5.0
        assert rec.gauges["temp"] == 0.25
        assert rec.name == "7"

    def test_observe_creates_histograms_on_demand(self):
        rec = MetricRecorder("x", histogram_bounds=[1.0, 10.0])
        rec.observe("lat", 5.0)
        rec.observe("lat", 0.5)
        assert rec.histograms["lat"].count == 2

    def test_snapshot_roundtrip(self):
        rec = MetricRecorder("3", histogram_bounds=[1.0, 10.0])
        rec.inc("a", 2.5)
        rec.set_gauge("g", 7.0)
        rec.observe("h", 3.0)
        clone = MetricRecorder.from_snapshot(rec.snapshot())
        assert clone.name == "3"
        assert clone.counters == rec.counters
        assert clone.gauges == rec.gauges
        assert clone.histograms["h"].counts == rec.histograms["h"].counts
        assert clone.histograms["h"].total == rec.histograms["h"].total

    def test_empty_histogram_roundtrip(self):
        rec = MetricRecorder("0", histogram_bounds=[1.0])
        rec.histograms["h"] = Histogram([1.0])
        clone = MetricRecorder.from_snapshot(rec.snapshot())
        assert clone.histograms["h"].min == math.inf
        assert clone.histograms["h"].max == -math.inf


class TestMetricsRegistry:
    def test_recorder_identity(self):
        reg = MetricsRegistry()
        assert reg.recorder(0) is reg.recorder("0")
        assert reg.recorder(0) is not reg.recorder(1)
        assert len(reg) == 2

    def test_merge_counters_exact(self):
        # the acceptance property: N per-thread recorders merge to the
        # exact totals a single global recorder would have seen
        reg = MetricsRegistry(histogram_bounds=[1.0, 10.0, 100.0])
        expected = 0.0
        for tid in range(4):
            rec = reg.recorder(tid)
            for i in range(10 * (tid + 1)):
                rec.inc("evals")
                expected += 1.0
        assert reg.merged().counters["evals"] == expected == 100.0

    def test_merge_histograms_exact(self):
        bounds = [1.0, 10.0, 100.0]
        reg = MetricsRegistry(histogram_bounds=bounds)
        reference = Histogram(bounds)
        samples = {0: [0.5, 5.0], 1: [50.0, 500.0], 2: [2.0]}
        for tid, vals in samples.items():
            rec = reg.recorder(tid)
            for v in vals:
                rec.observe("lat", v)
                reference.observe(v)
        merged = reg.merged().histograms["lat"]
        assert merged.counts == reference.counts
        assert merged.total == pytest.approx(reference.total)

    def test_merge_gauges_keep_per_thread_views(self):
        reg = MetricsRegistry()
        reg.recorder(0).set_gauge("q", 1.0)
        reg.recorder(1).set_gauge("q", 2.0)
        merged = reg.merged()
        assert merged.gauges["q{thread=0}"] == 1.0
        assert merged.gauges["q{thread=1}"] == 2.0
        assert merged.gauges["q"] in (1.0, 2.0)

    def test_adopt_external_recorder(self):
        reg = MetricsRegistry()
        reg.recorder(0).inc("n", 1.0)
        external = MetricRecorder("1")
        external.inc("n", 2.0)
        reg.adopt(external)
        assert reg.merged().counters["n"] == 3.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.recorder("main").inc("x")
        snap = reg.snapshot()
        assert set(snap) == {"merged", "per_thread"}
        assert "main" in snap["per_thread"]
        assert snap["merged"]["counters"]["x"] == 1.0

    def test_default_bounds_are_increasing(self):
        assert all(
            a < b
            for a, b in zip(DEFAULT_LATENCY_BUCKETS_US, DEFAULT_LATENCY_BUCKETS_US[1:])
        )

"""Tests for the flat-array population store."""

import numpy as np
import pytest

from repro.cga import Grid2D, Population
from repro.heuristics import min_min
from repro.scheduling.schedule import compute_completion_times


@pytest.fixture
def pop(tiny_instance, rng):
    p = Population(tiny_instance, Grid2D(4, 4))
    p.init_random(rng)
    return p


class TestInit:
    def test_shapes(self, tiny_instance):
        p = Population(tiny_instance, Grid2D(4, 4))
        assert p.s.shape == (16, tiny_instance.ntasks)
        assert p.ct.shape == (16, tiny_instance.nmachines)
        assert p.fitness.shape == (16,)

    def test_init_random_valid(self, pop):
        pop.check_invariants()

    def test_seed_schedule_planted(self, tiny_instance, rng):
        p = Population(tiny_instance, Grid2D(4, 4))
        seed = min_min(tiny_instance)
        p.init_random(rng, seed_schedules=[seed])
        assert np.array_equal(p.s[0], seed.s)
        assert p.fitness[0] == pytest.approx(seed.makespan())

    def test_seed_positions(self, tiny_instance, rng):
        p = Population(tiny_instance, Grid2D(4, 4))
        seed = min_min(tiny_instance)
        p.init_random(rng, seed_schedules=[seed], seed_positions=[7])
        assert np.array_equal(p.s[7], seed.s)

    def test_seed_position_mismatch(self, tiny_instance, rng):
        p = Population(tiny_instance, Grid2D(4, 4))
        with pytest.raises(ValueError, match="length"):
            p.init_random(rng, seed_schedules=[min_min(tiny_instance)], seed_positions=[1, 2])

    def test_backing_arrays_adopted(self, tiny_instance, rng):
        n = 16
        s = np.zeros((n, tiny_instance.ntasks), dtype=np.int32)
        ct = np.zeros((n, tiny_instance.nmachines))
        fit = np.zeros(n)
        p = Population(tiny_instance, Grid2D(4, 4), s=s, ct=ct, fitness=fit)
        p.init_random(rng)
        assert p.s is s  # writes go straight to the shared buffer
        assert s.any()

    def test_backing_array_shape_rejected(self, tiny_instance):
        with pytest.raises(ValueError, match="backing array"):
            Population(tiny_instance, Grid2D(4, 4), s=np.zeros((2, 2), dtype=np.int32))


class TestEvaluateAll:
    def test_matches_per_individual_computation(self, pop, tiny_instance):
        for i in range(pop.size):
            expected = compute_completion_times(tiny_instance, pop.s[i])
            assert np.allclose(pop.ct[i], expected)
            assert pop.fitness[i] == pytest.approx(expected.max())

    def test_respects_ready_times(self, rng):
        from repro.etc.model import ETCMatrix

        inst = ETCMatrix(np.ones((4, 2)), ready_times=np.array([10.0, 0.0]))
        p = Population(inst, Grid2D(2, 2))
        p.init_random(rng)
        assert np.all(p.ct[:, 0] >= 10.0)


class TestAccessors:
    def test_read_individual_is_snapshot(self, pop):
        s, ct, fit = pop.read_individual(3)
        s[0] = 99
        assert pop.s[3, 0] != 99

    def test_write_individual(self, pop, tiny_instance, rng):
        s = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks).astype(np.int32)
        ct = compute_completion_times(tiny_instance, s)
        pop.write_individual(5, s, ct, float(ct.max()))
        assert np.array_equal(pop.s[5], s)
        pop.check_invariants(5)

    def test_best(self, pop):
        idx, fit = pop.best()
        assert fit == pytest.approx(pop.fitness.min())
        assert pop.fitness[idx] == fit

    def test_mean_fitness(self, pop):
        assert pop.mean_fitness() == pytest.approx(pop.fitness.mean())

    def test_as_schedule(self, pop, tiny_instance):
        sched = pop.as_schedule(2)
        assert np.array_equal(sched.s, pop.s[2])
        assert sched.makespan() == pytest.approx(pop.fitness[2])

    def test_clone_independent(self, pop):
        c = pop.clone()
        c.s[0, 0] = (c.s[0, 0] + 1) % pop.instance.nmachines
        assert pop.s[0, 0] != c.s[0, 0] or True  # clone never aliases
        assert c.s is not pop.s

    def test_invariant_check_catches_bad_fitness(self, pop):
        pop.fitness[0] += 1.0
        with pytest.raises(AssertionError, match="cached fitness"):
            pop.check_invariants(0)

"""Tests for recombination operators and the incremental CT rule."""

import numpy as np
import pytest

from repro.cga.crossover import CROSSOVERS, child_with_ct, one_point, two_point, uniform
from repro.scheduling.schedule import compute_completion_times


@pytest.fixture
def parents(tiny_instance, rng):
    p1 = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks).astype(np.int32)
    p2 = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks).astype(np.int32)
    return p1, p2


class TestOnePoint:
    def test_prefix_from_p1_suffix_from_p2(self, parents, rng):
        p1, p2 = parents
        child = one_point(p1, p2, rng)
        n = p1.size
        # find the cut: first index where child switches allegiance
        agree1 = child == p1
        agree2 = child == p2
        # every gene comes from one parent
        assert np.all(agree1 | agree2)
        # the prefix tracks p1 and the suffix tracks p2 for *some* cut
        cuts = [k for k in range(1, n) if np.all(agree1[:k]) and np.all(agree2[k:])]
        assert cuts

    def test_does_not_modify_parents(self, parents, rng):
        p1, p2 = parents
        c1, c2 = p1.copy(), p2.copy()
        one_point(p1, p2, rng)
        assert np.array_equal(p1, c1) and np.array_equal(p2, c2)

    def test_both_parents_contribute(self, rng):
        p1 = np.zeros(10, dtype=np.int32)
        p2 = np.ones(10, dtype=np.int32)
        for _ in range(20):
            child = one_point(p1, p2, rng)
            assert 0 < child.sum() < 10  # cut in [1, 9] guarantees a mix

    def test_length_one(self, rng):
        p1 = np.array([0], dtype=np.int32)
        p2 = np.array([1], dtype=np.int32)
        assert one_point(p1, p2, rng)[0] == 0


class TestTwoPoint:
    def test_window_from_p2(self, rng):
        p1 = np.zeros(20, dtype=np.int32)
        p2 = np.ones(20, dtype=np.int32)
        child = two_point(p1, p2, rng)
        ones = np.flatnonzero(child == 1)
        if ones.size:
            # the p2 genes form one contiguous window
            assert np.all(np.diff(ones) == 1)

    def test_every_gene_from_a_parent(self, parents, rng):
        p1, p2 = parents
        child = two_point(p1, p2, rng)
        assert np.all((child == p1) | (child == p2))

    def test_varies_across_draws(self, rng):
        p1 = np.zeros(30, dtype=np.int32)
        p2 = np.ones(30, dtype=np.int32)
        sums = {int(two_point(p1, p2, rng).sum()) for _ in range(30)}
        assert len(sums) > 3


class TestUniform:
    def test_every_gene_from_a_parent(self, parents, rng):
        p1, p2 = parents
        child = uniform(p1, p2, rng)
        assert np.all((child == p1) | (child == p2))

    def test_roughly_half_from_each(self, rng):
        p1 = np.zeros(1000, dtype=np.int32)
        p2 = np.ones(1000, dtype=np.int32)
        frac = uniform(p1, p2, rng).mean()
        assert 0.4 < frac < 0.6


@pytest.mark.parametrize("name,op", list(CROSSOVERS.items()))
class TestChildWithCT:
    def test_ct_matches_recomputation(self, name, op, tiny_instance, parents, rng):
        p1, p2 = parents
        p1_ct = compute_completion_times(tiny_instance, p1)
        child, ct = child_with_ct(tiny_instance, p1, p1_ct, p2, op, rng)
        fresh = compute_completion_times(tiny_instance, child)
        assert np.allclose(ct, fresh)

    def test_parent_ct_untouched(self, name, op, tiny_instance, parents, rng):
        p1, p2 = parents
        p1_ct = compute_completion_times(tiny_instance, p1)
        saved = p1_ct.copy()
        child_with_ct(tiny_instance, p1, p1_ct, p2, op, rng)
        assert np.array_equal(p1_ct, saved)

    def test_identical_parents_give_identical_child(
        self, name, op, tiny_instance, parents, rng
    ):
        p1, _ = parents
        p1_ct = compute_completion_times(tiny_instance, p1)
        child, ct = child_with_ct(tiny_instance, p1, p1_ct, p1, op, rng)
        assert np.array_equal(child, p1)
        assert np.allclose(ct, p1_ct)

"""Flight recorder: mmap ring semantics, crash hooks, stack dumps."""

import json
import os
import signal
import struct
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.obs.flight import (
    DEFAULT_SLOTS,
    HEADER_SIZE,
    MAGIC,
    SLOT_SIZE,
    FlightRecorder,
    append_stack_dump,
    dump_stacks,
    flight_paths,
    install_crash_hooks,
    load_flight_dir,
    read_events,
    worker_crash_scope,
    write_postmortem,
)


class TestRing:
    def test_roundtrip(self, tmp_path):
        ring = FlightRecorder(tmp_path / "main.bin", slots=8)
        ring.record("sweep", "pubs=3", 1.0)
        ring.record("checkpoint", "gen 5", 5.0)
        events = ring.events()
        assert [e["kind"] for e in events] == ["sweep", "checkpoint"]
        assert events[0]["msg"] == "pubs=3"
        assert events[1]["value"] == 5.0
        assert events[0]["seq"] == 0
        assert ring.n_recorded == 2
        ring.close()

    def test_wrap_keeps_newest(self, tmp_path):
        ring = FlightRecorder(tmp_path / "r.bin", slots=4)
        for i in range(10):
            ring.record("sweep", value=float(i))
        events = ring.events()
        assert len(events) == 4
        assert [e["value"] for e in events] == [6.0, 7.0, 8.0, 9.0]
        assert [e["seq"] for e in events] == [6, 7, 8, 9]
        assert ring.n_recorded == 10
        ring.close()

    def test_file_size_is_header_plus_slots(self, tmp_path):
        ring = FlightRecorder(tmp_path / "r.bin", slots=16)
        ring.close()
        assert (tmp_path / "r.bin").stat().st_size == HEADER_SIZE + 16 * SLOT_SIZE

    def test_default_capacity(self, tmp_path):
        ring = FlightRecorder(tmp_path / "r.bin")
        assert ring.slots == DEFAULT_SLOTS
        ring.close()

    def test_readable_without_close(self, tmp_path):
        """The crash-survival property: events are readable from the
        file while the writer still holds the mapping (no flush)."""
        ring = FlightRecorder(tmp_path / "r.bin", slots=8)
        ring.record("stall", "w1", 2.5)
        events = read_events(tmp_path / "r.bin")
        assert events and events[0]["kind"] == "stall"
        ring.close()

    def test_mid_write_death_drops_at_most_newest(self, tmp_path):
        """Simulate a writer killed between slot write and cursor bump:
        the reader must decode the published prefix, never torn data."""
        ring = FlightRecorder(tmp_path / "r.bin", slots=8)
        ring.record("sweep", value=1.0)
        ring.close()
        raw = bytearray((tmp_path / "r.bin").read_bytes())
        # hand-write garbage into the *next* slot without bumping the cursor
        offset = HEADER_SIZE + 1 * SLOT_SIZE
        raw[offset : offset + SLOT_SIZE] = os.urandom(SLOT_SIZE)
        (tmp_path / "r.bin").write_bytes(raw)
        events = read_events(tmp_path / "r.bin")
        assert len(events) == 1 and events[0]["kind"] == "sweep"

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "junk.bin"
        p.write_bytes(b"\x00" * (HEADER_SIZE + SLOT_SIZE))
        with pytest.raises(ValueError, match="not a flight ring"):
            read_events(p)
        assert MAGIC not in p.read_bytes()

    def test_truncated_file_rejected(self, tmp_path):
        p = tmp_path / "short.bin"
        p.write_bytes(b"tiny")
        with pytest.raises(ValueError, match="too short"):
            read_events(p)

    def test_too_few_slots_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least 2 slots"):
            FlightRecorder(tmp_path / "r.bin", slots=1)

    def test_record_after_close_is_noop(self, tmp_path):
        ring = FlightRecorder(tmp_path / "r.bin", slots=4)
        ring.close()
        ring.record("sweep")  # must not raise
        assert ring.n_recorded == 0

    def test_non_ascii_truncated_not_fatal(self, tmp_path):
        ring = FlightRecorder(tmp_path / "r.bin", slots=4)
        ring.record("crash", "émoji ☃ and a very long message " * 4)
        (event,) = ring.events()
        assert len(event["msg"]) <= 36
        ring.close()

    def test_shared_epoch_aligns_rings(self, tmp_path):
        a = FlightRecorder(tmp_path / "a.bin", slots=4, epoch_unix=100.0)
        b = FlightRecorder(tmp_path / "b.bin", slots=4, epoch_unix=100.0)
        assert a.epoch == b.epoch == 100.0
        a.close()
        b.close()

    def test_survives_sigkill(self, tmp_path):
        """A child SIGKILLed mid-run leaves its recorded events readable."""
        ring_path = tmp_path / "w0.bin"
        code = textwrap.dedent(
            f"""
            import os, sys, time
            sys.path.insert(0, {str(Path(__file__).resolve().parents[1] / "src")!r})
            from repro.obs.flight import FlightRecorder
            ring = FlightRecorder({str(ring_path)!r}, slots=64)
            for i in range(20):
                ring.record("sweep", f"i={{i}}", float(i))
            print("READY", flush=True)
            time.sleep(30)
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code], stdout=subprocess.PIPE, text=True
        )
        assert proc.stdout.readline().strip() == "READY"
        proc.kill()
        proc.wait()
        events = read_events(ring_path)
        assert len(events) == 20
        assert events[-1]["value"] == 19.0


class TestLayout:
    def test_flight_paths_shape(self, tmp_path):
        paths = flight_paths(tmp_path, "w3")
        assert paths["ring"].name == "w3.bin"
        assert paths["stacks"].name == "stacks-w3.txt"
        assert paths["postmortem"].name == "postmortem-w3.json"
        assert paths["crashlog"].name == "crash-w3.log"
        assert paths["resources"].name == "resources-w3.jsonl"
        assert paths["samples"].name == "samples-w3.collapsed"
        assert all(p.parent == tmp_path / "flight" for p in paths.values())

    def test_load_flight_dir(self, tmp_path):
        for role in ("main", "w0"):
            ring = FlightRecorder(flight_paths(tmp_path, role)["ring"], slots=4)
            ring.record("sweep", role)
            ring.close()
        rings = load_flight_dir(tmp_path)
        assert set(rings) == {"main", "w0"}
        assert rings["w0"][0]["msg"] == "w0"

    def test_load_flight_dir_skips_unreadable(self, tmp_path):
        (tmp_path / "flight").mkdir()
        (tmp_path / "flight" / "bad.bin").write_bytes(b"nope")
        assert load_flight_dir(tmp_path) == {}

    def test_load_flight_dir_missing(self, tmp_path):
        assert load_flight_dir(tmp_path / "nothing") == {}


class TestStackDumps:
    def test_dump_stacks_contains_this_test(self):
        text = dump_stacks(note="unit")
        assert "unit" in text
        assert "test_dump_stacks_contains_this_test" in text
        assert f"pid={os.getpid()}" in text

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "stacks.txt"
        append_stack_dump(path, note="first")
        append_stack_dump(path, note="second")
        text = path.read_text()
        assert text.count("=== stack dump") == 2
        assert "(first)" in text and "(second)" in text


class TestPostmortemRecord:
    def test_write_postmortem_shape(self, tmp_path):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            path = write_postmortem(tmp_path, "w1", exc, resources={"rss_mb": 5.0})
        record = json.loads(path.read_text())
        assert record["role"] == "w1"
        assert record["pid"] == os.getpid()
        assert record["exception"]["type"] == "ValueError"
        assert record["exception"]["message"] == "boom"
        assert any("boom" in ln for ln in record["exception"]["traceback"])
        assert record["resources"] == {"rss_mb": 5.0}
        assert "test_write_postmortem_shape" in record["stacks"]


class TestCrashScope:
    def test_exception_writes_postmortem_and_reraises(self, tmp_path):
        ring = FlightRecorder(flight_paths(tmp_path, "w0")["ring"], slots=8)
        with pytest.raises(RuntimeError, match="kaput"):
            with worker_crash_scope(tmp_path, "w0", ring=ring):
                raise RuntimeError("kaput")
        record = json.loads(flight_paths(tmp_path, "w0")["postmortem"].read_text())
        assert record["exception"]["type"] == "RuntimeError"
        events = read_events(flight_paths(tmp_path, "w0")["ring"])
        assert events[-1]["kind"] == "crash"
        assert "kaput" in events[-1]["msg"]

    def test_clean_exit_writes_nothing(self, tmp_path):
        with worker_crash_scope(tmp_path, "w0"):
            pass
        assert not flight_paths(tmp_path, "w0")["postmortem"].exists()

    def test_hooks_restored_after_scope(self, tmp_path):
        before = sys.excepthook
        with worker_crash_scope(tmp_path, "w0"):
            assert sys.excepthook is not before
        assert sys.excepthook is before


class TestSigusr1:
    def test_handler_dumps_stacks_and_records_event(self, tmp_path):
        ring = FlightRecorder(flight_paths(tmp_path, "main")["ring"], slots=8)
        hooks = install_crash_hooks(tmp_path, "main", ring=ring)
        try:
            os.kill(os.getpid(), signal.SIGUSR1)
            stacks = flight_paths(tmp_path, "main")["stacks"]
            assert stacks.exists()
            assert "SIGUSR1" in stacks.read_text()
            events = read_events(flight_paths(tmp_path, "main")["ring"])
            assert events[-1]["kind"] == "signal"
        finally:
            hooks.uninstall()
            ring.close()

    def test_uninstall_restores_previous_handler(self, tmp_path):
        previous = signal.getsignal(signal.SIGUSR1)
        hooks = install_crash_hooks(tmp_path, "main")
        assert signal.getsignal(signal.SIGUSR1) is not previous
        hooks.uninstall()
        assert signal.getsignal(signal.SIGUSR1) is previous


def test_event_struct_is_64_bytes():
    assert SLOT_SIZE == 64
    assert struct.calcsize("<d12s36sd") == 64

"""Tests for the simulated-annealing baseline."""

import numpy as np
import pytest

from repro.baselines import SimulatedAnnealing
from repro.cga import StopCondition
from repro.heuristics import min_min
from repro.scheduling.validation import check_completion_times, validate_assignment


class TestConstruction:
    def test_starts_from_minmin(self, tiny_instance):
        sa = SimulatedAnnealing(tiny_instance, rng=0)
        assert np.array_equal(sa.current.s, min_min(tiny_instance).s)

    def test_random_start(self, tiny_instance):
        sa = SimulatedAnnealing(tiny_instance, seed_with_minmin=False, rng=0)
        assert not np.array_equal(sa.current.s, min_min(tiny_instance).s)

    def test_temperature_scales_with_makespan(self, tiny_instance):
        sa = SimulatedAnnealing(tiny_instance, initial_temperature=0.5, rng=0)
        assert sa.temperature == pytest.approx(0.5 * min_min(tiny_instance).makespan())

    def test_parameter_validation(self, tiny_instance):
        with pytest.raises(ValueError):
            SimulatedAnnealing(tiny_instance, initial_temperature=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(tiny_instance, cooling=1.0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(tiny_instance, cooling=0.0)


class TestRun:
    def test_never_loses_best(self, small_instance):
        sa = SimulatedAnnealing(small_instance, rng=1)
        start = sa.best.makespan()
        res = sa.run(StopCondition(max_evaluations=3000))
        assert res.best_fitness <= start

    def test_best_assignment_consistent(self, small_instance):
        sa = SimulatedAnnealing(small_instance, rng=2)
        res = sa.run(StopCondition(max_evaluations=2000))
        validate_assignment(small_instance, res.best_assignment)
        from repro.scheduling import makespan

        assert makespan(small_instance, res.best_assignment) == pytest.approx(
            res.best_fitness
        )

    def test_incumbent_ct_stays_exact(self, small_instance):
        sa = SimulatedAnnealing(small_instance, rng=3)
        sa.run(StopCondition(max_evaluations=3000))
        check_completion_times(small_instance, sa.current.s, sa.current.ct)

    def test_deterministic(self, tiny_instance):
        a = SimulatedAnnealing(tiny_instance, rng=5).run(StopCondition(max_evaluations=1000))
        b = SimulatedAnnealing(tiny_instance, rng=5).run(StopCondition(max_evaluations=1000))
        assert a.best_fitness == b.best_fitness

    def test_temperature_decays(self, tiny_instance):
        sa = SimulatedAnnealing(tiny_instance, rng=0)
        t0 = sa.temperature
        sa.run(StopCondition(max_evaluations=2000))
        assert sa.temperature < t0

    def test_improves_random_start_strongly(self, small_instance):
        sa = SimulatedAnnealing(small_instance, seed_with_minmin=False, rng=4)
        start = sa.best.makespan()
        res = sa.run(StopCondition(max_evaluations=5000))
        assert res.best_fitness < 0.7 * start

    def test_history_recorded(self, small_instance):
        sa = SimulatedAnnealing(small_instance, rng=0)
        res = sa.run(StopCondition(max_evaluations=2500))
        assert len(res.history) >= 3
        bests = [row[2] for row in res.history]
        assert all(b <= a + 1e-9 for a, b in zip(bests, bests[1:]))

    def test_extra_metadata(self, tiny_instance):
        res = SimulatedAnnealing(tiny_instance, rng=0).run(
            StopCondition(max_evaluations=100)
        )
        assert res.extra["algorithm"] == "simulated-annealing"
        assert res.extra["final_temperature"] > 0

"""Tests for the one-call reproduction campaign (tiny scale)."""

import pytest

from repro.experiments.campaign import run_campaign


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("campaign")
        # minuscule scale: the full pipeline in a few seconds
        return run_campaign(out, scale=0.02, n_runs=1, seed=4)

    def test_all_artifacts_present(self, report):
        expected = {"table1", "fig4", "fig5", "table2", "fig6", "quality", "index"}
        assert expected <= set(report.artifacts)

    def test_files_exist_and_nonempty(self, report):
        for name, path in report.artifacts.items():
            assert path.exists(), name
            assert path.stat().st_size > 0, name

    def test_fig4_has_speedup_table(self, report):
        text = report.summaries["fig4"]
        assert "ls_iterations" in text
        assert "%" in text

    def test_table2_includes_paper_column(self, report):
        assert "paper winner" in report.summaries["table2"]

    def test_fig5_reports_family_test(self, report):
        assert "Wilcoxon" in report.summaries["fig5"]

    def test_quality_reports_gap(self, report):
        assert "mean PA-CGA gap above LP" in report.summaries["quality"]

    def test_index_lists_everything(self, report):
        index = report.summaries["index"]
        for name in ("fig4", "fig5", "table2", "fig6", "quality"):
            assert name in index

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            run_campaign(tmp_path, scale=0.0)
        with pytest.raises(ValueError):
            run_campaign(tmp_path, n_runs=0)

"""Tests for the four paper-artifact harnesses (reduced budgets).

These exercise the full experiment pipelines end-to-end; the *paper
scale* runs live in benchmarks/.  Budgets here are tiny, so only
structural properties and the most robust qualitative facts are
asserted.
"""

import numpy as np
import pytest

from repro.etc import make_instance
from repro.experiments import (
    PAPER_TABLE2,
    comparison_experiment,
    convergence_experiment,
    operators_experiment,
    speedup_experiment,
)
from repro.experiments.reference import FIG4_EXPECTATIONS, FIG6_EXPECTATIONS
from repro.parallel.costmodel import CostModel


# a small instance keeps harness tests fast while preserving structure
SMALL = make_instance(96, 8, consistency="i", seed=21, name="exp-small")
FAST_MODEL = CostModel(jitter_sigma=0.02)


class TestReferenceData:
    def test_twelve_rows(self):
        assert len(PAPER_TABLE2) == 12

    def test_pa_cga_90s_wins_most_instances(self):
        winners = [row.best_algorithm() for row in PAPER_TABLE2.values()]
        assert winners.count("pa-cga-90s") >= 7  # "improves most previous results"

    def test_low_heterogeneity_not_won_by_pacga(self):
        # the paper: PA-CGA does not improve results on lolo instances;
        # cMA+LTH holds all three of those rows
        for name in ("u_c_lolo.0", "u_s_lolo.0", "u_i_lolo.0"):
            assert PAPER_TABLE2[name].best_algorithm() == "cma+lth"

    def test_expectation_tables_cover_figures(self):
        assert set(FIG4_EXPECTATIONS) == {0, 1, 5, 10}
        assert FIG6_EXPECTATIONS["three_threads_best_final"]


class TestSpeedupExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return speedup_experiment(
            SMALL,
            thread_counts=(1, 2, 3),
            ls_iterations=(0, 5),
            virtual_time=0.02,
            n_runs=2,
            seed=1,
            cost_model=FAST_MODEL,
        )

    def test_all_cells_present(self, result):
        assert set(result.mean_evaluations) == {(it, n) for it in (0, 5) for n in (1, 2, 3)}

    def test_baseline_100_percent(self, result):
        assert result.speedup_percent(0, 1) == pytest.approx(100.0)
        assert result.speedup_percent(5, 1) == pytest.approx(100.0)

    def test_zero_ls_does_not_speed_up(self, result):
        assert result.speedup_percent(0, 3) < 115.0

    def test_series_shape(self, result):
        series = result.series(5)
        assert [n for n, _ in series] == [1, 2, 3]

    def test_table_renders(self, result):
        out = result.table()
        assert "ls_iterations" in out
        assert "%" in out

    def test_boundary_fractions_recorded(self, result):
        assert result.boundary_fractions[1] == 0.0
        assert result.boundary_fractions[3] > 0.0


class TestOperatorsExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return operators_experiment(
            instances=["u_i_hilo.0"],
            variants=(("opx", 5), ("tpx", 10)),
            n_threads=2,
            virtual_time=0.01,
            n_runs=3,
            seed=2,
            cost_model=FAST_MODEL,
        )

    def test_samples_collected(self, result):
        assert set(result.variants()) == {"opx/5", "tpx/10"}
        assert result.samples[("u_i_hilo.0", "opx/5")].shape == (3,)

    def test_stats_accessible(self, result):
        s = result.stats("u_i_hilo.0", "tpx/10")
        assert s.n == 3
        assert s.minimum <= s.median <= s.maximum

    def test_best_variant_is_one_of_them(self, result):
        assert result.best_variant("u_i_hilo.0") in {"opx/5", "tpx/10"}

    def test_p_value_in_range(self, result):
        p = result.p_value("u_i_hilo.0", "opx/5", "tpx/10")
        assert 0.0 <= p <= 1.0

    def test_table_renders(self, result):
        out = result.table()
        assert "u_i_hilo.0" in out


class TestComparisonExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return comparison_experiment(
            instances=["u_i_hihi.0"],
            virtual_time=0.01,
            n_runs=2,
            seed=3,
            cost_model=FAST_MODEL,
        )

    def test_all_algorithms_present(self, result):
        algs = {a for (_, a) in result.means}
        assert algs == {"struggle-ga", "cma+lth", "pa-cga-10s", "pa-cga-90s"}

    def test_winner_defined(self, result):
        assert result.winner("u_i_hihi.0") in {
            "struggle-ga",
            "cma+lth",
            "pa-cga-10s",
            "pa-cga-90s",
        }

    def test_90s_at_least_as_good_as_10s(self, result):
        # 9x the budget can only help (same seeds, elitist engines)
        assert result.means[("u_i_hihi.0", "pa-cga-90s")] <= result.means[
            ("u_i_hihi.0", "pa-cga-10s")
        ] * 1.001

    def test_table_renders(self, result):
        out = result.table()
        assert "paper winner" in out
        assert "u_i_hihi.0" in out


class TestConvergenceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return convergence_experiment(
            SMALL,
            thread_counts=(1, 3),
            virtual_time=0.03,
            n_runs=2,
            seed=4,
            cost_model=FAST_MODEL,
            grid_points=16,
        )

    def test_curves_on_common_grid(self, result):
        assert result.generations.shape == (16,)
        assert set(result.curves) == {1, 3}
        for curve in result.curves.values():
            assert curve.shape == (16,)

    def test_curves_monotone_nonincreasing(self, result):
        for curve in result.curves.values():
            assert np.all(np.diff(curve) <= 1e-6)

    def test_more_threads_more_generations(self, result):
        # paper: 1 thread evolves fewer generations in the budget
        assert result.generations_reached[1] < result.generations_reached[3]

    def test_final_means_recorded(self, result):
        assert set(result.final_mean) == {1, 3}
        assert all(v > 0 for v in result.final_mean.values())

    def test_best_thread_count_defined(self, result):
        assert result.best_thread_count() in (1, 3)

    def test_sparkline_renders(self, result):
        assert len(result.sparkline(3)) > 0

"""Tests for instance file I/O."""

import numpy as np
import pytest

from repro.etc import (
    load_braun_flat,
    load_instance,
    make_instance,
    save_braun_flat,
    save_instance,
)


class TestAnnotatedFormat:
    def test_roundtrip(self, tmp_path, small_instance):
        path = tmp_path / "inst.etc"
        save_instance(small_instance, path)
        back = load_instance(path)
        assert back == small_instance
        assert back.name == small_instance.name

    def test_roundtrip_unnamed(self, tmp_path):
        inst = make_instance(8, 3, seed=2, name="")
        inst = type(inst)(etc=inst.etc, name="")
        path = tmp_path / "anon.etc"
        save_instance(inst, path)
        back = load_instance(path)
        assert np.allclose(back.etc, inst.etc)
        assert back.name == ""

    def test_header_dimension_mismatch(self, tmp_path):
        path = tmp_path / "bad.etc"
        path.write_text("2 2\n1.0 2.0\n")
        with pytest.raises(ValueError, match="shape"):
            load_instance(path)

    def test_malformed_dimension_line(self, tmp_path):
        path = tmp_path / "bad2.etc"
        path.write_text("not dims\n1.0 2.0\n")
        with pytest.raises(ValueError, match="malformed"):
            load_instance(path)

    def test_precision_roundtrip(self, tmp_path):
        inst = make_instance(16, 4, seed=9)
        path = tmp_path / "prec.etc"
        save_instance(inst, path)
        back = load_instance(path)
        assert np.allclose(back.etc, inst.etc, rtol=1e-9)


class TestBraunFlatFormat:
    def test_roundtrip(self, tmp_path, tiny_instance):
        path = tmp_path / "u_test.0"
        save_braun_flat(tiny_instance, path)
        back = load_braun_flat(path, tiny_instance.ntasks, tiny_instance.nmachines)
        assert np.allclose(back.etc, tiny_instance.etc)

    def test_default_name_from_stem(self, tmp_path, tiny_instance):
        path = tmp_path / "u_i_hihi.0"
        save_braun_flat(tiny_instance, path)
        back = load_braun_flat(path, 16, 4)
        assert back.name == "u_i_hihi"

    def test_wrong_size(self, tmp_path, tiny_instance):
        path = tmp_path / "flat"
        save_braun_flat(tiny_instance, path)
        with pytest.raises(ValueError, match="expected"):
            load_braun_flat(path, 99, 4)

    def test_value_order_is_task_major(self, tmp_path, tiny_instance):
        path = tmp_path / "flat2"
        save_braun_flat(tiny_instance, path)
        values = [float(line) for line in path.read_text().splitlines()]
        assert values[0] == pytest.approx(tiny_instance.etc[0, 0])
        assert values[tiny_instance.nmachines] == pytest.approx(tiny_instance.etc[1, 0])

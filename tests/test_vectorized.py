"""VectorizedSyncCGA engine tests: invariants, registration, quality.

The vectorized engine is *statistically* — not bitwise — equivalent to
the scalar engines (per-generation RNG blocks are drawn in a different
order), so these tests check the properties that must hold exactly
(CT invariant, elitist monotonicity, registry/CLI wiring, validation)
and check solution quality against ``SyncCGA`` at equal budget with a
tolerance (ISSUE acceptance: within 1 % on ``u_c_hihi``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AsyncCGA,
    CGAConfig,
    StopCondition,
    SyncCGA,
    VectorizedSyncCGA,
)
from repro.cga import SEQUENTIAL_ENGINES
from repro.kernels import batch_resync_drift


def _run(instance, cfg, seed=0, evals=256 * 10, **kw):
    eng = VectorizedSyncCGA(instance, cfg, rng=seed, **kw)
    return eng, eng.run(StopCondition(max_evaluations=evals))


class TestRunBasics:
    def test_runs_and_improves(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5)
        _, res = _run(small_instance, cfg, evals=64 * 20)
        assert res.evaluations >= 64 * 20
        assert res.generations == res.evaluations // 64
        first_best = res.history[0][2]
        assert res.best_fitness < first_best

    def test_best_schedule_is_consistent(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5)
        _, res = _run(small_instance, cfg, evals=64 * 10)
        sched = res.best_schedule(small_instance)
        assert sched.makespan() == pytest.approx(res.best_fitness)

    def test_deterministic_given_seed(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5)
        _, r1 = _run(small_instance, cfg, seed=42, evals=64 * 15)
        _, r2 = _run(small_instance, cfg, seed=42, evals=64 * 15)
        assert r1.best_fitness == r2.best_fitness
        assert r1.history == r2.history

    def test_eval_budget_overshoot_below_one_generation(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=0)
        _, res = _run(small_instance, cfg, evals=100)  # not a multiple of 64
        assert 100 <= res.evaluations < 100 + 64

    def test_generation_budget(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=0)
        eng = VectorizedSyncCGA(small_instance, cfg, rng=0)
        res = eng.run(StopCondition(max_generations=7))
        assert res.generations == 7
        assert res.evaluations == 7 * 64


class TestInvariants:
    def test_ct_invariant_after_long_run(self, small_instance):
        """Incremental CT must track the exact recomputation (~1e-9)."""
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5)
        eng, _ = _run(small_instance, cfg, evals=64 * 100)
        drift = batch_resync_drift(small_instance, eng.pop.s, eng.pop.ct)
        scale = float(np.abs(eng.pop.ct).max())
        assert drift <= 1e-9 * max(scale, 1.0)
        assert eng.resync_drift() == pytest.approx(drift)

    def test_monotone_best_under_elitist_replacement(self, small_instance):
        """'if-better' replacement can never lose the incumbent best."""
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5, replacement="if-better")
        _, res = _run(small_instance, cfg, evals=64 * 50)
        bests = [row[2] for row in res.history]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(bests, bests[1:]))

    def test_population_stays_valid(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5)
        eng, _ = _run(small_instance, cfg, evals=64 * 30)
        assert eng.pop.s.min() >= 0
        assert eng.pop.s.max() < small_instance.nmachines
        assert eng.pop.s.dtype == np.int32

    def test_weighted_fitness_path(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5, fitness="makespan+flowtime")
        eng, res = _run(small_instance, cfg, evals=64 * 20)
        assert np.isfinite(res.best_fitness)
        drift = batch_resync_drift(small_instance, eng.pop.s, eng.pop.ct)
        assert drift < 1e-6

    def test_no_local_search_path(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, local_search=None)
        eng, res = _run(small_instance, cfg, evals=64 * 20)
        assert np.isfinite(res.best_fitness)
        assert batch_resync_drift(small_instance, eng.pop.s, eng.pop.ct) < 1e-6

    @pytest.mark.parametrize("selection", ["tournament", "random", "center+best"])
    def test_alternate_selections(self, small_instance, selection):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=2, selection=selection)
        eng, res = _run(small_instance, cfg, evals=64 * 10)
        assert np.isfinite(res.best_fitness)
        assert batch_resync_drift(small_instance, eng.pop.s, eng.pop.ct) < 1e-6


class TestValidation:
    def test_rejects_unsupported_selection(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, selection="rank")
        with pytest.raises(ValueError, match="no batch selection"):
            VectorizedSyncCGA(small_instance, cfg)

    def test_rejects_unsupported_local_search(self, small_instance):
        cfg = CGAConfig(grid_rows=8, grid_cols=8, local_search="random-move")
        with pytest.raises(ValueError, match="no batch kernel for 'random-move'"):
            VectorizedSyncCGA(small_instance, cfg)

    def test_supported_scalar_configs_accepted(self, small_instance):
        """Every default-ish config the scalar engines use must load."""
        for crossover in ("opx", "tpx", "uniform"):
            for mutation in ("move", "swap", "rebalance"):
                cfg = CGAConfig(grid_rows=8, grid_cols=8, crossover=crossover, mutation=mutation)
                VectorizedSyncCGA(small_instance, cfg)  # must not raise


class TestRegistration:
    def test_in_sequential_engines_registry(self):
        assert SEQUENTIAL_ENGINES["vectorized"] is VectorizedSyncCGA
        assert SEQUENTIAL_ENGINES["async"] is AsyncCGA
        assert SEQUENTIAL_ENGINES["sync"] is SyncCGA

    def test_cli_exposes_vectorized(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "solve",
                "--instance",
                "u_i_hilo.0",
                "--engine",
                "vectorized",
                "--evals",
                str(256 * 5),
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out.lower()


class TestQualityParity:
    def test_within_one_percent_of_sync_at_equal_budget(self, consistent_instance):
        """ISSUE acceptance: vectorized best makespan within 1 % of
        SyncCGA at equal budget on u_c_hihi.

        A single seed sits close to the line (noise of the per-generation
        RNG reordering), so compare mean-of-3-seeds which is stable.
        """
        budget = StopCondition(max_evaluations=256 * 40)
        cfg = CGAConfig(ls_iterations=10)
        gaps = []
        for seed in range(3):
            vec = VectorizedSyncCGA(
                consistent_instance, cfg, rng=seed, record_history=False
            ).run(budget)
            ref = SyncCGA(
                consistent_instance, cfg, rng=seed, record_history=False
            ).run(budget)
            gaps.append(vec.best_fitness / ref.best_fitness - 1.0)
        assert float(np.mean(gaps)) < 0.01

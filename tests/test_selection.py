"""Tests for parent selection."""

import numpy as np
import pytest

from repro.cga.selection import (
    SELECTIONS,
    best_two,
    binary_tournament_pair,
    center_plus_best,
    linear_rank_pair,
    random_pair,
    roulette_pair,
)


@pytest.fixture
def fitness():
    # position 2 is best, then 0
    return np.array([5.0, 9.0, 1.0, 7.0, 6.0])


class TestBestTwo:
    def test_returns_two_best(self, fitness, rng):
        a, b = best_two(fitness, rng)
        assert (a, b) == (2, 0)

    def test_ties_broken_by_position(self, rng):
        f = np.array([3.0, 1.0, 1.0, 9.0])
        assert best_two(f, rng) == (1, 2)

    def test_deterministic(self, fitness):
        rngs = [np.random.default_rng(i) for i in range(3)]
        picks = {best_two(fitness, r) for r in rngs}
        assert len(picks) == 1

    def test_needs_two(self, rng):
        with pytest.raises(ValueError):
            best_two(np.array([1.0]), rng)


class TestTournament:
    def test_picks_valid_positions(self, fitness, rng):
        for _ in range(50):
            a, b = binary_tournament_pair(fitness, rng)
            assert 0 <= a < fitness.size
            assert 0 <= b < fitness.size

    def test_biased_toward_best(self, fitness, rng):
        wins = sum(
            1
            for _ in range(400)
            if 2 in binary_tournament_pair(fitness, rng)
        )
        # best individual wins any tournament it enters; it enters one of
        # two slots with p ~ 1 - (3/5)^4 per pair
        assert wins > 150

    def test_needs_two(self, rng):
        with pytest.raises(ValueError):
            binary_tournament_pair(np.array([1.0]), rng)


class TestRandomPair:
    def test_distinct(self, fitness, rng):
        for _ in range(50):
            a, b = random_pair(fitness, rng)
            assert a != b

    def test_uniformish(self, fitness, rng):
        counts = np.zeros(fitness.size)
        for _ in range(500):
            a, b = random_pair(fitness, rng)
            counts[a] += 1
            counts[b] += 1
        assert counts.min() > 100  # every position gets picked


class TestLinearRank:
    def test_valid_positions(self, fitness, rng):
        for _ in range(50):
            a, b = linear_rank_pair(fitness, rng)
            assert a != b
            assert 0 <= a < fitness.size

    def test_best_selected_most(self, fitness, rng):
        counts = np.zeros(fitness.size)
        for _ in range(600):
            a, b = linear_rank_pair(fitness, rng)
            counts[a] += 1
            counts[b] += 1
        assert counts[2] == counts.max()

    def test_needs_two(self, rng):
        with pytest.raises(ValueError):
            linear_rank_pair(np.array([3.0]), rng)


class TestCenterPlusBest:
    def test_includes_center(self, fitness, rng):
        pair = center_plus_best(fitness, rng)
        assert 0 in pair

    def test_best_other_neighbor_chosen(self, fitness, rng):
        a, b = center_plus_best(fitness, rng)
        other = a if a != 0 else b
        assert other == 2  # global best sits at position 2

    def test_best_first_ordering(self, rng):
        # center is the best: it must come first
        f = np.array([1.0, 5.0, 3.0])
        assert center_plus_best(f, rng) == (0, 2)
        # a neighbor is better: neighbor first
        f = np.array([4.0, 5.0, 3.0])
        assert center_plus_best(f, rng) == (2, 0)

    def test_needs_two(self, rng):
        with pytest.raises(ValueError):
            center_plus_best(np.array([1.0]), rng)


class TestRoulette:
    def test_distinct_valid_positions(self, fitness, rng):
        for _ in range(50):
            a, b = roulette_pair(fitness, rng)
            assert a != b
            assert 0 <= a < fitness.size

    def test_best_favored(self, fitness, rng):
        counts = np.zeros(fitness.size)
        for _ in range(600):
            a, b = roulette_pair(fitness, rng)
            counts[a] += 1
            counts[b] += 1
        assert counts[2] == counts.max()

    def test_needs_two(self, rng):
        with pytest.raises(ValueError):
            roulette_pair(np.array([2.0]), rng)


def test_registry_contents():
    assert set(SELECTIONS) == {
        "best2",
        "tournament",
        "random",
        "rank",
        "center+best",
        "roulette",
    }


def test_all_selectors_work_in_engine(tiny_instance):
    from repro.cga import AsyncCGA, CGAConfig, StopCondition

    for name in SELECTIONS:
        config = CGAConfig(
            grid_rows=4, grid_cols=4, selection=name, ls_iterations=1,
            seed_with_minmin=False,
        )
        eng = AsyncCGA(tiny_instance, config, rng=0)
        res = eng.run(StopCondition(max_generations=2))
        eng.pop.check_invariants()
        assert res.evaluations == 32

"""Doc-drift gate: documentation must track the code it describes.

Three families of checks, all driven by introspection so they cannot
themselves drift:

* every relative markdown link in the docs set resolves to a real file;
* every ``repro`` / ``python -m repro`` command line in a fenced bash
  block names a real subcommand, real flags on that subcommand, and
  real engine/problem names where ``--engine`` / ``--problem`` appear;
* every ```python fenced block in docs/*.md actually executes (skip a
  block by preceding its fence with ``<!-- notest -->``).

Coverage is also asserted positively: each docs page is in the scanned
set, and every canonical engine and problem name is mentioned
somewhere in the documentation.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.problems import PROBLEMS
from repro.runtime.registry import ENGINE_SPECS

ROOT = Path(__file__).resolve().parent.parent

DOCS_PAGES = [
    "docs/api.md",
    "docs/cost_model.md",
    "docs/paper_mapping.md",
    "docs/reproduction_guide.md",
    "docs/serving.md",
    "docs/operations.md",
]
DOC_SET = ["README.md", "DESIGN.md", "EXPERIMENTS.md", *DOCS_PAGES]


def _read(rel):
    return (ROOT / rel).read_text(encoding="utf-8")


def test_docs_pages_all_exist():
    # The scanned set is the contract: a page added to docs/ without
    # being listed here is invisible to the drift gate.
    on_disk = sorted(p.name for p in (ROOT / "docs").glob("*.md"))
    listed = sorted(Path(p).name for p in DOCS_PAGES)
    assert on_disk == listed


# ---------------------------------------------------------------------------
# Link resolution
# ---------------------------------------------------------------------------

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _fenced_spans(text):
    spans = []
    start = None
    for m in re.finditer(r"^```.*$", text, re.M):
        if start is None:
            start = m.start()
        else:
            spans.append((start, m.end()))
            start = None
    return spans


def _outside_fences(text):
    """Text with fenced code blocks blanked out (offsets preserved)."""
    chars = list(text)
    for a, b in _fenced_spans(text):
        for i in range(a, b):
            if chars[i] != "\n":
                chars[i] = " "
    return "".join(chars)


@pytest.mark.parametrize("page", DOC_SET)
def test_relative_links_resolve(page):
    text = _outside_fences(_read(page))
    base = (ROOT / page).parent
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (base / path).exists():
            broken.append(target)
    assert not broken, f"{page}: broken relative links {broken}"


# ---------------------------------------------------------------------------
# CLI command lines in bash blocks
# ---------------------------------------------------------------------------


def _bash_blocks(text):
    for m in re.finditer(r"^```(?:bash|sh|console)\n(.*?)^```", text, re.M | re.S):
        yield m.group(1)


def _command_lines(block):
    """Join backslash continuations, yield repro invocations as argv."""
    logical, pending = [], ""
    for raw in block.splitlines():
        line = pending + raw
        if line.rstrip().endswith("\\"):
            pending = line.rstrip()[:-1] + " "
            continue
        pending = ""
        logical.append(line)
    for line in logical:
        line = line.strip()
        if line.startswith("$ "):
            line = line[2:]
        m = re.match(r"^(?:[A-Z_]+=\S+\s+)*(?:python -m repro|repro)\s+(.*)$", line)
        if not m:
            continue
        try:
            yield shlex.split(m.group(1), comments=True)
        except ValueError:
            yield m.group(1).split()


def _subcommands():
    parser = build_parser()
    return parser._subparsers._group_actions[0].choices


def _option_strings(subparser):
    return {opt for a in subparser._actions for opt in a.option_strings}


def _nested_choices(subparser):
    for a in subparser._actions:
        if isinstance(getattr(a, "choices", None), dict):
            return a.choices
    return {}


def _flag_choices(subparser, flag):
    for a in subparser._actions:
        if flag in a.option_strings and a.choices is not None:
            return set(a.choices)
    return None


@pytest.mark.parametrize("page", DOC_SET)
def test_cli_lines_match_parser(page):
    subs = _subcommands()
    problems = []
    for block in _bash_blocks(_read(page)):
        for argv in _command_lines(block):
            if not argv:
                continue
            name = argv[0]
            if name not in subs:
                problems.append(f"unknown subcommand {name!r} in: {argv}")
                continue
            sp = subs[name]
            rest = argv[1:]
            nested = _nested_choices(sp)
            if nested and rest and rest[0] in nested:
                sp = nested[rest[0]]
                rest = rest[1:]
            opts = _option_strings(sp)
            for i, tok in enumerate(rest):
                if not tok.startswith("--"):
                    continue
                flag = tok.split("=", 1)[0]
                if flag not in opts:
                    problems.append(f"{name}: unknown flag {flag!r} in: {argv}")
                    continue
                value = (
                    tok.split("=", 1)[1]
                    if "=" in tok
                    else (rest[i + 1] if i + 1 < len(rest) else None)
                )
                allowed = _flag_choices(sp, flag)
                if allowed and value is not None and value not in allowed:
                    problems.append(
                        f"{name}: {flag} value {value!r} not in {sorted(allowed)}"
                    )
    assert not problems, f"{page}:\n" + "\n".join(problems)


def test_readme_cli_enumeration_is_current():
    # "instances|heuristics|solve|..." one-liners must only name real
    # subcommands (the trailing "..." wildcard is allowed).
    subs = set(_subcommands())
    for page in ("README.md", "docs/api.md"):
        for m in re.finditer(r"python -m repro ([\w|]+\|[\w|.]+)", _read(page)):
            names = [n for n in m.group(1).split("|") if n and n != "..."]
            unknown = [n for n in names if n not in subs]
            assert not unknown, f"{page}: unknown subcommands {unknown}"


# ---------------------------------------------------------------------------
# Engine / problem name coverage
# ---------------------------------------------------------------------------


def test_every_engine_documented():
    corpus = "\n".join(_read(p) for p in DOC_SET)
    missing = [e for e in ENGINE_SPECS if f"`{e}`" not in corpus and e not in corpus]
    assert not missing, f"engines absent from all docs: {missing}"


def test_every_problem_documented():
    corpus = "\n".join(_read(p) for p in DOC_SET)
    missing = [p for p in PROBLEMS if p not in corpus]
    assert not missing, f"problems absent from all docs: {missing}"


# ---------------------------------------------------------------------------
# Executable python blocks
# ---------------------------------------------------------------------------


def _python_blocks(page):
    text = _read(page)
    out = []
    for m in re.finditer(r"^```python\n(.*?)^```", text, re.M | re.S):
        prefix = text[: m.start()].rstrip().rsplit("\n", 1)[-1]
        if "<!-- notest -->" in prefix:
            continue
        out.append((text[: m.start()].count("\n") + 2, m.group(1)))
    return out


ALL_PY_BLOCKS = [
    pytest.param(page, line, src, id=f"{Path(page).name}:{line}")
    for page in DOC_SET
    for line, src in _python_blocks(page)
]


@pytest.mark.parametrize("page, line, src", ALL_PY_BLOCKS)
def test_python_block_executes(page, line, src, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = compile(src, f"{page}:{line}", "exec")
    exec(code, {"__name__": "__docs__"})


def test_examples_importable():
    # examples/ rides the same gate: every example must at least parse.
    examples = sorted((ROOT / "examples").glob("*.py"))
    assert examples
    for path in examples:
        compile(path.read_text(encoding="utf-8"), str(path), "exec")

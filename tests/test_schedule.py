"""Tests for the (S, CT) schedule representation."""

import numpy as np
import pytest

from repro.scheduling import Schedule, compute_completion_times
from repro.scheduling.validation import check_completion_times


class TestComputeCompletionTimes:
    def test_matches_manual_sum(self, tiny_instance):
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        ct = compute_completion_times(tiny_instance, s)
        assert ct[0] == pytest.approx(tiny_instance.etc[:, 0].sum())
        assert np.all(ct[1:] == 0)

    def test_includes_ready_times(self, tiny_instance):
        import repro.etc.model as model

        inst = model.ETCMatrix(
            tiny_instance.etc, ready_times=np.full(tiny_instance.nmachines, 3.5)
        )
        s = np.zeros(inst.ntasks, dtype=np.int32)
        ct = compute_completion_times(inst, s)
        assert ct[1] == pytest.approx(3.5)

    def test_balanced_assignment(self, tiny_instance):
        rng = np.random.default_rng(0)
        s = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks)
        ct = compute_completion_times(tiny_instance, s)
        expected = np.zeros(tiny_instance.nmachines)
        for t, m in enumerate(s):
            expected[m] += tiny_instance.etc[t, m]
        assert np.allclose(ct, expected)


class TestScheduleConstruction:
    def test_random_valid(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        assert sched.s.shape == (tiny_instance.ntasks,)
        check_completion_times(tiny_instance, sched.s, sched.ct)

    def test_rejects_wrong_shape(self, tiny_instance):
        with pytest.raises(ValueError, match="shape"):
            Schedule(tiny_instance, np.zeros(3, dtype=np.int32))

    def test_rejects_out_of_range(self, tiny_instance):
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        s[0] = tiny_instance.nmachines
        with pytest.raises(ValueError, match="out-of-range"):
            Schedule(tiny_instance, s)

    def test_owns_its_arrays(self, tiny_instance):
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        sched = Schedule(tiny_instance, s)
        s[0] = 1
        assert sched.s[0] == 0

    def test_copy_independent(self, tiny_instance, rng):
        a = Schedule.random(tiny_instance, rng)
        b = a.copy()
        b.move(0, (a.s[0] + 1) % tiny_instance.nmachines)
        assert a != b
        check_completion_times(tiny_instance, a.s, a.ct)


class TestIncrementalMutators:
    def test_move_updates_ct(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        old_machine = int(sched.s[5])
        target = (old_machine + 1) % tiny_instance.nmachines
        sched.move(5, target)
        assert sched.s[5] == target
        check_completion_times(tiny_instance, sched.s, sched.ct)

    def test_move_noop_same_machine(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        before = sched.ct.copy()
        sched.move(3, int(sched.s[3]))
        assert np.array_equal(sched.ct, before)

    def test_swap_updates_ct(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        sched.swap(0, 1)
        check_completion_times(tiny_instance, sched.s, sched.ct)

    def test_swap_exchanges_machines(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        ma, mb = int(sched.s[2]), int(sched.s[9])
        sched.swap(2, 9)
        assert sched.s[2] == mb and sched.s[9] == ma

    def test_apply_delta(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        tasks = np.array([0, 4, 8])
        machines = (sched.s[tasks] + 1) % tiny_instance.nmachines
        sched.apply_delta(tasks, machines)
        assert np.array_equal(sched.s[tasks], machines)
        check_completion_times(tiny_instance, sched.s, sched.ct)

    def test_apply_delta_empty(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        before = sched.ct.copy()
        sched.apply_delta(np.array([], dtype=int), np.array([], dtype=np.int32))
        assert np.array_equal(sched.ct, before)

    def test_apply_delta_shape_mismatch(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        with pytest.raises(ValueError, match="same shape"):
            sched.apply_delta(np.array([0, 1]), np.array([0]))

    def test_set_assignment_recomputes(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        new = np.zeros(tiny_instance.ntasks, dtype=np.int32)
        sched.set_assignment(new)
        assert sched.makespan() == pytest.approx(tiny_instance.etc[:, 0].sum())

    def test_long_mutation_chain_stays_exact(self, small_instance, rng):
        sched = Schedule.random(small_instance, rng)
        for _ in range(2000):
            t = int(rng.integers(0, small_instance.ntasks))
            m = int(rng.integers(0, small_instance.nmachines))
            sched.move(t, m)
        drift = sched.resync()
        assert drift < 1e-6  # incremental float updates stay tight


class TestObjectiveAccessors:
    def test_makespan_is_ct_max(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        assert sched.makespan() == pytest.approx(sched.ct.max())

    def test_most_loaded_machine(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        assert sched.ct[sched.most_loaded_machine()] == sched.makespan()

    def test_tasks_on(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        for m in range(tiny_instance.nmachines):
            tasks = sched.tasks_on(m)
            assert np.all(sched.s[tasks] == m)
        total = sum(sched.tasks_on(m).size for m in range(tiny_instance.nmachines))
        assert total == tiny_instance.ntasks

    def test_equality_by_assignment(self, tiny_instance, rng):
        a = Schedule.random(tiny_instance, rng)
        b = Schedule(tiny_instance, a.s)
        assert a == b

    def test_repr_contains_makespan(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        assert "makespan=" in repr(sched)

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.engine == "sim"
        assert args.threads == 3
        assert args.crossover == "tpx"

    def test_run_help_lists_engine_aliases(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["run", "--help"])
        assert exc.value.code == 0
        out = " ".join(capsys.readouterr().out.split())  # undo argparse wrapping
        assert "pacga-sim = sim" in out
        assert "pacga-threads = threads" in out
        assert "pacga-processes = processes" in out


class TestInstances:
    def test_lists_all_twelve(self, capsys):
        assert main(["instances"]) == 0
        out = capsys.readouterr().out
        for name in ("u_c_hihi.0", "u_i_lolo.0", "u_s_lohi.0"):
            assert name in out


class TestHeuristics:
    def test_runs_all(self, capsys):
        assert main(["heuristics", "--instance", "u_i_hilo.0"]) == 0
        out = capsys.readouterr().out
        assert "min-min" in out
        assert "sufferage" in out

    def test_lp_bound_flag(self, capsys):
        assert main(["heuristics", "--instance", "u_i_hilo.0", "--lp-bound"]) == 0
        assert "LP lower bound" in capsys.readouterr().out


class TestSolve:
    def test_sim_engine(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--instance",
                    "u_i_hilo.0",
                    "--evals",
                    "600",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best makespan" in out
        assert "evaluations   : 600" in out

    def test_async_engine_with_gantt(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--engine",
                    "async",
                    "--instance",
                    "u_i_hilo.0",
                    "--evals",
                    "300",
                    "--gantt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "m00" in out  # gantt rows

    def test_out_file(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        assert (
            main(
                [
                    "solve",
                    "--instance",
                    "u_i_hilo.0",
                    "--evals",
                    "300",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        data = json.loads(path.read_text())
        assert data["evaluations"] == 300

    def test_deterministic_given_seed(self, capsys):
        main(["solve", "--instance", "u_i_hilo.0", "--evals", "400", "--seed", "9"])
        a = capsys.readouterr().out
        main(["solve", "--instance", "u_i_hilo.0", "--evals", "400", "--seed", "9"])
        b = capsys.readouterr().out
        assert a == b


class TestObsFlagValidation:
    """Obs flags configure the bundle, so without --obs-out they are an
    error, not silently ignored."""

    BASE = ["solve", "--instance", "u_i_hilo.0", "--evals", "100"]

    @pytest.mark.parametrize(
        "flags, named",
        [
            (["--obs-trace"], "--obs-trace"),
            (["--no-obs-trace"], "--obs-trace"),
            (["--obs-sample-every", "64"], "--obs-sample-every"),
            (["--obs-live", "0"], "--obs-live"),
            (["--obs-stall-deadline", "5"], "--obs-stall-deadline"),
            (["--obs-profile"], "--obs-profile"),
            (["--obs-flight"], "--obs-flight"),
            (["--no-obs-resources"], "--obs-resources"),
            (["--obs-stack-sample", "100"], "--obs-stack-sample"),
        ],
    )
    def test_obs_flag_without_obs_out_is_rejected(self, flags, named, capsys):
        assert main(self.BASE + flags) == 2
        err = capsys.readouterr().err
        assert named in err
        assert "require --obs-out" in err

    def test_flight_and_resources_default_on_with_obs_out(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        rc = main(self.BASE + ["--engine", "async", "--obs-out", str(out)])
        assert rc == 0
        assert (out / "flight" / "main.bin").exists()
        assert (out / "resources.jsonl").exists()
        meta = json.loads((out / "meta.json").read_text())
        assert meta["resources"]["peak_rss_mb"] > 0

    def test_flight_and_resources_opt_out(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        rc = main(
            self.BASE
            + [
                "--engine",
                "async",
                "--obs-out",
                str(out),
                "--no-obs-flight",
                "--no-obs-resources",
            ]
        )
        assert rc == 0
        assert not (out / "flight").exists()
        assert not (out / "resources.jsonl").exists()

    def test_obs_stack_sample_writes_collapsed(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        rc = main(
            self.BASE
            + [
                "--engine",
                "async",
                "--evals",
                "3000",
                "--obs-out",
                str(out),
                "--obs-stack-sample",
                "500",
            ]
        )
        assert rc == 0
        assert (out / "samples.collapsed").exists()
        meta = json.loads((out / "meta.json").read_text())
        assert meta["n_stack_samples"] > 0

    def test_obs_postmortem_subcommand(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        assert main(self.BASE + ["--engine", "async", "--obs-out", str(out)]) == 0
        capsys.readouterr()
        assert main(["obs", "postmortem", str(out)]) == 0
        report = capsys.readouterr().out
        assert "postmortem:" in report
        assert "== flight ring main" in report
        assert main(["obs", "postmortem", str(tmp_path / "nope")]) == 1

    def test_obs_flags_accepted_with_obs_out(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        rc = main(
            self.BASE
            + [
                "--engine",
                "async",
                "--obs-out",
                str(out),
                "--obs-sample-every",
                "64",
                "--no-obs-trace",
            ]
        )
        assert rc == 0
        assert (out / "metrics.json").exists()
        assert not (out / "trace.json").exists()

    def test_obs_profile_writes_artifacts_and_meta(self, tmp_path, capsys):
        out = tmp_path / "profiled"
        rc = main(
            self.BASE
            + ["--engine", "async", "--obs-out", str(out), "--obs-profile"]
        )
        assert rc == 0
        for name in ("profile.pstats", "profile.txt", "profile.collapsed"):
            assert (out / name).exists(), name
        meta = json.loads((out / "meta.json").read_text())
        stamp = meta["profile"]
        assert stamp["events"] > 0
        assert stamp["overhead_est_s"] >= 0.0
        assert stamp["artifacts"] == [
            "profile.collapsed",
            "profile.pstats",
            "profile.txt",
        ]
        assert any(
            "run" in entry["function"] for entry in stamp["top_cumulative"]
        )

    def test_obs_live_announces_endpoint(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        rc = main(
            self.BASE
            + ["--engine", "async", "--obs-out", str(out), "--obs-live", "0"]
        )
        assert rc == 0
        stdout = capsys.readouterr().out
        assert f"live telemetry : {out}/live.json" in stdout
        assert (out / "live.json").exists()


class TestGenerate:
    def test_writes_instance(self, tmp_path, capsys):
        path = tmp_path / "gen.etc"
        assert (
            main(
                [
                    "generate",
                    "--ntasks",
                    "24",
                    "--nmachines",
                    "4",
                    "--consistency",
                    "c",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        from repro.etc import load_instance

        inst = load_instance(path)
        assert inst.ntasks == 24
        assert inst.is_consistent()


class TestHarnessCommands:
    def test_speedup(self, capsys):
        assert main(["speedup", "--vtime", "0.01", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "ls_iterations" in out

    def test_operators(self, capsys):
        assert (
            main(
                [
                    "operators",
                    "--instance",
                    "u_i_hilo.0",
                    "--vtime",
                    "0.005",
                    "--runs",
                    "2",
                ]
            )
            == 0
        )
        assert "tpx/10" in capsys.readouterr().out

    def test_comparison(self, capsys):
        assert (
            main(
                [
                    "comparison",
                    "--instance",
                    "u_i_hilo.0",
                    "--vtime",
                    "0.005",
                    "--runs",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pa-cga-90s" in out

    def test_convergence(self, capsys):
        assert (
            main(["convergence", "--vtime", "0.01", "--runs", "1"]) == 0
        )
        out = capsys.readouterr().out
        assert "best thread count" in out

    def test_quality(self, capsys):
        assert (
            main(["quality", "--instance", "u_i_hilo.0", "--evals", "400"]) == 0
        )
        out = capsys.readouterr().out
        assert "LP bound" in out
        assert "mean PA-CGA gap" in out

    def test_reproduce(self, tmp_path, capsys):
        assert (
            main(
                [
                    "reproduce",
                    "--out",
                    str(tmp_path / "repro_out"),
                    "--scale",
                    "0.01",
                    "--runs",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "campaign artifacts" in out
        assert (tmp_path / "repro_out" / "fig4.txt").exists()

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--instance", "u_i_hilo.0", "--samples", "100"]) == 0
        out = capsys.readouterr().out
        assert "t_breed" in out
        assert "t_ls_iter" in out

    def test_solve_weighted_fitness(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--instance",
                    "u_i_hilo.0",
                    "--evals",
                    "300",
                    "--fitness",
                    "makespan+flowtime",
                ]
            )
            == 0
        )
        assert "best makespan" in capsys.readouterr().out

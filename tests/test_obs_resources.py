"""Resource telemetry: /proc readers, GC pause tracking, the sampler."""

import gc
import json
import os
import time

import pytest

from repro.obs.metrics import MetricRecorder
from repro.obs.resources import (
    PEAK_FIELDS,
    SHM_PREFIX,
    GCPauseTracker,
    ResourceSampler,
    count_open_fds,
    load_resource_rows,
    read_proc_status,
    resource_peaks,
    shm_segment_bytes,
)


class TestProcReaders:
    def test_read_proc_status_live(self):
        out = read_proc_status()
        assert out["rss_mb"] > 0
        assert out["cpu_s"] >= 0

    def test_read_proc_status_fake_root(self, tmp_path):
        root = tmp_path / "proc"
        root.mkdir()
        (root / "status").write_bytes(b"Name:\tx\nVmRSS:\t   2048 kB\n")
        # comm contains spaces and a ")" — the split must be on the last ")"
        (root / "stat").write_bytes(
            b"42 (my (we) ird) S 1 42 42 0 -1 4194304 "
            + b"0 0 0 0 100 50 0 0 20 0 1 0 100 0 0\n"
        )
        out = read_proc_status(str(root))
        assert out["rss_mb"] == 2.0
        ticks = float(os.sysconf("SC_CLK_TCK"))
        assert out["cpu_s"] == round(150 / ticks, 3)

    def test_read_proc_status_falls_back_without_procfs(self, tmp_path):
        out = read_proc_status(str(tmp_path / "nope"))
        assert out["rss_mb"] > 0  # getrusage fallback still yields numbers
        assert "cpu_s" in out

    def test_count_open_fds(self):
        n = count_open_fds()
        assert n is not None and n > 0
        with open(os.devnull) as fh:
            assert count_open_fds() > n - 1
            assert fh is not None

    def test_count_open_fds_missing_procfs(self, tmp_path):
        assert count_open_fds(str(tmp_path / "nope")) is None

    def test_shm_segment_bytes_counts_only_prefix(self, tmp_path):
        (tmp_path / f"{SHM_PREFIX}a").write_bytes(b"x" * 100)
        (tmp_path / f"{SHM_PREFIX}b").write_bytes(b"x" * 50)
        (tmp_path / "other-seg").write_bytes(b"x" * 999)
        assert shm_segment_bytes(root=str(tmp_path)) == 150

    def test_shm_segment_bytes_missing_root(self, tmp_path):
        assert shm_segment_bytes(root=str(tmp_path / "nope")) is None


class TestGCPauseTracker:
    def test_measures_forced_collections(self):
        tracker = GCPauseTracker().install()
        try:
            before = tracker.collections
            gc.collect()
            gc.collect()
            assert tracker.collections >= before + 2
            assert tracker.pause_s >= 0.0
        finally:
            tracker.uninstall()

    def test_uninstall_stops_counting(self):
        tracker = GCPauseTracker().install()
        tracker.uninstall()
        frozen = tracker.collections
        gc.collect()
        assert tracker.collections == frozen
        assert tracker._on_gc not in gc.callbacks


class TestResourceSampler:
    def test_sample_row_schema(self):
        sampler = ResourceSampler(role="w7")
        try:
            row = sampler.sample()
            assert row["role"] == "w7"
            assert row["pid"] == os.getpid()
            assert row["rss_mb"] > 0
            assert row["fds"] > 0
            assert row["t_s"] >= 0
            for key in ("gc_gen0", "gc_collections", "gc_pause_s"):
                assert key in row
        finally:
            sampler.stop()

    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError, match="every_s"):
            ResourceSampler(every_s=0)

    def test_peaks_track_maxima(self):
        sampler = ResourceSampler()
        try:
            sampler.sample()
            sampler.sample()
            assert sampler.peaks["peak_rss_mb"] >= sampler.latest["rss_mb"] or (
                sampler.peaks["peak_rss_mb"] > 0
            )
            assert set(sampler.peaks) <= {f"peak_{k}" for k in PEAK_FIELDS}
        finally:
            sampler.stop()

    def test_streams_jsonl(self, tmp_path):
        path = tmp_path / "resources.jsonl"
        sampler = ResourceSampler(out_path=path, role="main")
        sampler.sample()
        sampler.stop()  # stop() takes one final sample
        rows = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(rows) == 2
        assert all(r["role"] == "main" for r in rows)

    def test_background_thread_produces_rows(self):
        sampler = ResourceSampler(every_s=0.02).start()
        deadline = time.monotonic() + 2.0
        while len(sampler.rows) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        sampler.stop()
        assert len(sampler.rows) >= 3
        assert sampler._thread is None

    def test_stop_is_idempotent(self):
        sampler = ResourceSampler().start()
        sampler.stop()
        n = len(sampler.rows)
        sampler.stop()  # takes one more sample but must not raise
        assert len(sampler.rows) >= n

    def test_gauges_feed_recorder(self):
        rec = MetricRecorder()
        sampler = ResourceSampler(recorder=rec)
        try:
            sampler.sample()
            gauges = rec.gauges
            assert gauges["proc.rss_mb"] > 0
            assert gauges["proc.peak_rss_mb"] >= gauges["proc.rss_mb"] - 1.0
            assert "proc.fds" in gauges
        finally:
            sampler.stop()

    def test_bounded_retention(self):
        sampler = ResourceSampler()
        sampler.rows = [{"t_s": float(i)} for i in range(4096)]
        sampler.sample()
        assert len(sampler.rows) <= 4096 - 1023 + 1
        assert sampler.rows[0]["t_s"] == 0.0  # oldest row kept as anchor


class TestOfflineReaders:
    def test_load_rows_across_processes(self, tmp_path):
        (tmp_path / "resources.jsonl").write_text(
            json.dumps({"role": "main", "rss_mb": 10.0, "fds": 8}) + "\n"
        )
        flight = tmp_path / "flight"
        flight.mkdir()
        (flight / "resources-w0.jsonl").write_text(
            json.dumps({"role": "w0", "rss_mb": 25.0, "fds": 6}) + "\n"
            + '{"role": "w0", "rss_mb": 99'  # torn final line after a kill
        )
        rows = load_resource_rows(tmp_path)
        assert {r["role"] for r in rows} == {"main", "w0"}
        assert len(rows) == 2

    def test_resource_peaks_single_process_max(self, tmp_path):
        (tmp_path / "resources.jsonl").write_text(
            json.dumps({"role": "main", "rss_mb": 10.0, "fds": 8}) + "\n"
        )
        flight = tmp_path / "flight"
        flight.mkdir()
        (flight / "resources-w1.jsonl").write_text(
            json.dumps({"role": "w1", "rss_mb": 25.5, "fds": 6, "shm_mb": 1.5}) + "\n"
        )
        peaks = resource_peaks(tmp_path)
        assert peaks == {"peak_rss_mb": 25.5, "peak_fds": 8, "peak_shm_mb": 1.5}

    def test_empty_bundle(self, tmp_path):
        assert load_resource_rows(tmp_path) == []
        assert resource_peaks(tmp_path) == {}

"""Shared-memory block-parallel engine: lifecycle, seqlock, invariants.

The acceptance contract for :mod:`repro.parallel.shm`: the named
``/dev/shm`` segments exist exactly while the engine needs them —
gone after a normal run, after a worker exception, after a stall-kill,
and after the engine is garbage collected without ever running — and
the seqlock boundary protocol never lets a reader see a torn row.
"""

import gc
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cga import CGAConfig, StopCondition
from repro.parallel import ShmBlockPACGA
from repro.runtime.context import partition_ownership

CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=2, seed_with_minmin=False)


def shm_paths(engine) -> list[Path]:
    """The /dev/shm file backing each of the engine's segments."""
    return [
        Path("/dev/shm") / seg.name for seg in engine._arena.segments.values()
    ]


@pytest.fixture
def make_engine(tiny_instance):
    """Engine factory that always unlinks at test teardown."""
    engines = []

    def build(**over):
        kw = {"seed": 0, "lockstep": False}
        kw.update(over)
        n = kw.pop("n_threads", 2)
        rows = kw.pop("grid_rows", CFG.grid_rows)
        cols = kw.pop("grid_cols", CFG.grid_cols)
        cfg = CFG.with_(n_threads=n, grid_rows=rows, grid_cols=cols)
        eng = ShmBlockPACGA(tiny_instance, cfg, **kw)
        engines.append(eng)
        return eng

    yield build
    for eng in engines:
        eng._arena.unlink()


class TestLifecycle:
    def test_segments_exist_while_engine_lives(self, make_engine):
        eng = make_engine()
        paths = shm_paths(eng)
        assert len(paths) == 4  # s, ct, fitness, seq
        assert all(p.exists() for p in paths)

    def test_unlinked_after_normal_lockstep_run(self, make_engine):
        eng = make_engine(lockstep=True)
        paths = shm_paths(eng)
        eng.run(StopCondition(max_generations=2))
        assert not any(p.exists() for p in paths)

    def test_unlinked_after_normal_free_run(self, make_engine):
        eng = make_engine()
        paths = shm_paths(eng)
        eng.run(StopCondition(max_generations=2))
        assert not any(p.exists() for p in paths)

    def test_unlinked_after_lockstep_exception(self, make_engine):
        eng = make_engine(lockstep=True)
        paths = shm_paths(eng)

        def boom(tid, rng, rec=None):
            raise RuntimeError("sweep failed")

        eng._step_block = boom
        with pytest.raises(RuntimeError, match="sweep failed"):
            eng.run(StopCondition(max_generations=2))
        assert not any(p.exists() for p in paths)

    def test_unlinked_after_worker_crash(self, make_engine):
        """A forked worker dying nonzero fails the run loudly — and the
        segments are still gone."""
        eng = make_engine()
        paths = shm_paths(eng)

        def die(tid, rng, rec=None):
            raise SystemExit(3)  # child exits nonzero, no traceback spam

        eng._step_block = die  # inherited by the forked children
        with pytest.raises(RuntimeError, match="shm workers failed"):
            eng.run(StopCondition(max_generations=2))
        assert not any(p.exists() for p in paths)

    def test_stall_kill_terminates_group_and_unlinks(self, make_engine):
        eng = make_engine(stall_kill_s=0.3)
        paths = shm_paths(eng)

        def hang(tid, rng, rec=None):
            time.sleep(60)
            return 0, 0

        eng._step_block = hang
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="stalled"):
            eng.run(StopCondition(max_evaluations=10_000))
        assert time.monotonic() - t0 < 10  # killed, not waited out
        assert not any(p.exists() for p in paths)

    def test_finalizer_backstop_for_never_run_engine(self, tiny_instance):
        eng = ShmBlockPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0)
        paths = shm_paths(eng)
        assert all(p.exists() for p in paths)
        del eng
        gc.collect()
        assert not any(p.exists() for p in paths)

    def test_mappings_survive_unlink_for_repeat_runs(self, make_engine):
        """unlink removes the name only; a second run() still works on
        the same arrays."""
        eng = make_engine(lockstep=True)
        r1 = eng.run(StopCondition(max_generations=2))
        assert not any(p.exists() for p in shm_paths(eng))
        r2 = eng.run(StopCondition(max_generations=2))
        assert r2.evaluations == r1.evaluations
        eng.pop.check_invariants()


class TestFreeRunning:
    def test_population_consistent_after_run(self, make_engine):
        eng = make_engine(n_threads=2, seed=3)
        res = eng.run(StopCondition(max_generations=4))
        eng.pop.check_invariants()
        assert res.evaluations == sum(res.extra["per_thread_evaluations"])
        assert res.extra["n_threads"] == 2
        assert res.extra["lockstep"] is False
        assert res.extra["boundary_cells"] > 0

    def test_parent_sees_children_writes(self, make_engine):
        eng = make_engine(n_threads=2, seed=1)
        initial = eng.pop.fitness.copy()
        eng.run(StopCondition(max_generations=3))
        assert not np.array_equal(eng.pop.fitness, initial)

    def test_best_fitness_reflects_shared_state(self, make_engine):
        eng = make_engine(n_threads=2, seed=5)
        res = eng.run(StopCondition(max_generations=3))
        assert res.best_fitness == pytest.approx(eng.pop.fitness.min())

    def test_improves_over_initial(self, make_engine):
        eng = make_engine(n_threads=2, seed=2)
        initial = eng.pop.fitness.min()
        res = eng.run(StopCondition(max_generations=10))
        assert res.best_fitness <= initial

    def test_free_running_rejects_checkpoint_arming(self, make_engine):
        eng = make_engine()
        with pytest.raises(ValueError, match="lockstep"):
            eng.arm_checkpoint(1, lambda e: None)


class TestWorkerCollapse:
    """Oversubscribed workers fuse into ``min(n, cores)`` processes."""

    def test_collapsed_run_keeps_per_worker_accounting(self, make_engine):
        import os

        eng = make_engine(n_threads=4, seed=7)
        res = eng.run(StopCondition(max_generations=4))
        eng.pop.check_invariants()
        expected = min(4, os.cpu_count() or 1)
        assert res.extra["worker_processes"] == expected
        assert res.extra["n_threads"] == 4
        # every logical worker's counters advanced even when fused
        assert all(e > 0 for e in res.extra["per_thread_evaluations"])
        assert res.evaluations == sum(res.extra["per_thread_evaluations"])

    def test_oversubscribe_forces_full_fanout(self, make_engine):
        eng = make_engine(n_threads=2, seed=7, oversubscribe=True)
        res = eng.run(StopCondition(max_generations=2))
        assert res.extra["worker_processes"] == 2

    def test_fused_plan_structures(self, make_engine):
        eng = make_engine(n_threads=4)
        groups, plans = eng._free_plan(2)
        assert groups == [[0, 1], [2, 3]]
        for lead, gid in ((0, 0), (2, 1)):
            plan = plans[lead]
            assert plan["gid"] == gid
            # fused cells are the member blocks, in order
            expected = np.concatenate([eng.blocks[t] for t in groups[gid]])
            assert np.array_equal(plan["cells"], expected)
            assert plan["nb"].shape[0] == expected.size
            # group ownership covers both member blocks
            assert (plan["group_id"][expected] == gid).all()
        # a single fused group reads nothing across processes
        _, single = eng._free_plan(1)
        assert not single[0]["shared"].any()
        assert single[0]["boundary"] == 0

    def test_singleton_groups_have_no_plans(self, make_engine):
        eng = make_engine(n_threads=2)
        groups, plans = eng._free_plan(2)
        assert groups == [[0], [1]]
        assert plans is None


class TestSeqlock:
    def test_publish_stamps_boundary_rows_only(self, make_engine):
        # 8x8 grid: a 2-block row-band split leaves interior rows whose
        # cells no foreign block reads (a 4x4 torus has none)
        eng = make_engine(lockstep=True, grid_rows=8, grid_cols=8)
        block = eng.blocks[0]
        shared = block[eng._shared_read[block]]
        private = block[~eng._shared_read[block]]
        assert shared.size and private.size
        rows = np.array([int(shared[0]), int(private[0])])
        seq_before = eng._seq.copy()
        s_rows = eng.pop.s[rows] ^ 0  # copies
        ct_rows = eng.pop.ct[rows] + 1.0
        fit_rows = eng.pop.fitness[rows] + 1.0
        eng._publish(rows, s_rows, ct_rows, fit_rows)
        assert eng._seq[rows[0]] == seq_before[rows[0]] + 2  # stamped
        assert eng._seq[rows[0]] % 2 == 0  # consistent again
        assert eng._seq[rows[1]] == seq_before[rows[1]]  # plain store
        assert np.array_equal(eng.pop.ct[rows], ct_rows)
        assert np.array_equal(eng.pop.fitness[rows], fit_rows)

    def test_gather_returns_copies(self, make_engine):
        eng = make_engine(lockstep=True)
        ids = eng.blocks[1][:3]
        s, ct = eng._gather_rows(0, ids)
        assert np.array_equal(s, eng.pop.s[ids])
        assert np.array_equal(ct, eng.pop.ct[ids])
        s[...] = -1  # mutating the copy must not touch the population
        assert (eng.pop.s[ids] >= 0).all()

    def test_seq_gather_retries_until_row_is_even(self, make_engine):
        """A reader landing mid-write (odd counter) spins until the
        writer finishes and then returns the *final* row."""
        eng = make_engine(lockstep=True)
        c = int(eng.blocks[1][0])
        eng._seq[c] += 1  # odd: row is mid-write

        def writer():
            time.sleep(0.05)
            eng.pop.s[c] = 0
            eng.pop.ct[c] += 7.0
            eng._seq[c] += 1  # even: consistent

        t = threading.Thread(target=writer)
        t.start()
        s, ct = eng._seq_gather(np.array([c]))
        t.join()
        assert (s[0] == 0).all()
        assert np.array_equal(ct[0], eng.pop.ct[c])


class TestPartitionOwnership:
    @pytest.mark.parametrize("n_blocks", [1, 2, 4])
    def test_shared_read_matches_naive_definition(self, tiny_instance, n_blocks):
        eng = ShmBlockPACGA(
            tiny_instance, CFG.with_(n_threads=n_blocks), seed=0
        )
        try:
            block_id, shared = partition_ownership(
                eng.neighbors, eng.blocks, eng.grid.size
            )
            naive = np.zeros(eng.grid.size, dtype=bool)
            for d in range(eng.grid.size):
                for c in eng.neighbors[d]:
                    if block_id[int(c)] != block_id[d]:
                        naive[int(c)] = True
            assert np.array_equal(shared, naive)
            if n_blocks == 1:
                assert not shared.any()
        finally:
            eng._arena.unlink()

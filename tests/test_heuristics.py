"""Tests for the constructive heuristics."""

import numpy as np
import pytest

from repro.heuristics import (
    HEURISTICS,
    max_min,
    mct,
    met,
    min_min,
    olb,
    random_schedule,
    sufferage,
)
from repro.scheduling.validation import check_completion_times, validate_assignment


ALL = list(HEURISTICS.items())


@pytest.mark.parametrize("name,fn", ALL)
class TestAllHeuristics:
    def test_valid_schedule(self, name, fn, small_instance, rng):
        sched = fn(small_instance, rng)
        validate_assignment(small_instance, sched.s)
        check_completion_times(small_instance, sched.s, sched.ct)

    def test_makespan_positive(self, name, fn, small_instance, rng):
        assert fn(small_instance, rng).makespan() > 0

    def test_respects_lower_bound(self, name, fn, small_instance, rng):
        assert fn(small_instance, rng).makespan() >= small_instance.makespan_lower_bound()

    def test_single_machine(self, name, fn, rng):
        from repro.etc import make_instance

        inst = make_instance(10, 1, seed=0)
        sched = fn(inst, rng)
        assert sched.makespan() == pytest.approx(inst.etc[:, 0].sum())


class TestMinMin:
    def test_beats_random_clearly(self, small_instance, rng):
        rnd = np.mean([random_schedule(small_instance, rng).makespan() for _ in range(10)])
        assert min_min(small_instance).makespan() < rnd

    def test_beats_olb(self, benchmark_instance, rng):
        # on heterogeneous instances load-blind OLB is far worse
        assert min_min(benchmark_instance).makespan() < olb(benchmark_instance).makespan()

    def test_deterministic(self, small_instance):
        a = min_min(small_instance)
        b = min_min(small_instance)
        assert np.array_equal(a.s, b.s)

    def test_known_tiny_example(self):
        from repro.etc import ETCMatrix

        # 2 tasks, 2 machines: min-min puts each task on its fast machine
        inst = ETCMatrix(np.array([[1.0, 10.0], [10.0, 1.0]]))
        sched = min_min(inst)
        assert sched.s[0] == 0 and sched.s[1] == 1
        assert sched.makespan() == pytest.approx(1.0)


class TestMaxMin:
    def test_differs_from_minmin_in_general(self, benchmark_instance):
        assert not np.array_equal(
            min_min(benchmark_instance).s, max_min(benchmark_instance).s
        )

    def test_longest_task_placed_reasonably(self):
        from repro.etc import ETCMatrix

        # one huge task and three small ones on 2 machines: max-min
        # schedules the huge task first, alone on its best machine
        etc = np.array([[100.0, 110.0], [1.0, 1.1], [1.0, 1.1], [1.0, 1.1]])
        sched = max_min(ETCMatrix(etc))
        assert sched.s[0] == 0
        assert np.all(sched.s[1:] == 1)


class TestSufferage:
    def test_prefers_high_sufferage_tasks(self):
        from repro.etc import ETCMatrix

        # task 0 suffers hugely without machine 0; task 1 barely cares.
        etc = np.array([[1.0, 100.0], [1.0, 1.2]])
        sched = sufferage(ETCMatrix(etc))
        assert sched.s[0] == 0

    def test_competitive_with_minmin(self, benchmark_instance):
        suf = sufferage(benchmark_instance).makespan()
        mm = min_min(benchmark_instance).makespan()
        assert suf < 3 * mm


class TestListScheduling:
    def test_met_picks_fastest_machine(self, small_instance):
        sched = met(small_instance)
        assert np.array_equal(sched.s, small_instance.etc.argmin(axis=1))

    def test_met_degenerates_on_consistent(self, consistent_instance):
        # on consistent matrices one machine is fastest for everything
        sched = met(consistent_instance)
        assert np.unique(sched.s).size == 1

    def test_mct_beats_met_on_consistent(self, consistent_instance):
        assert (
            mct(consistent_instance).makespan() < met(consistent_instance).makespan()
        )

    def test_olb_uses_all_machines(self, small_instance):
        sched = olb(small_instance)
        assert np.unique(sched.s).size == small_instance.nmachines


class TestRandomSchedule:
    def test_seeded_reproducible(self, small_instance):
        a = random_schedule(small_instance, 5)
        b = random_schedule(small_instance, 5)
        assert np.array_equal(a.s, b.s)

    def test_different_seeds_differ(self, small_instance):
        assert not np.array_equal(
            random_schedule(small_instance, 1).s, random_schedule(small_instance, 2).s
        )


class TestRegistry:
    def test_names(self):
        assert set(HEURISTICS) == {
            "min-min",
            "max-min",
            "duplex",
            "sufferage",
            "mct",
            "met",
            "olb",
            "random",
        }

    def test_duplex_is_best_of_minmin_maxmin(self, benchmark_instance):
        from repro.heuristics import duplex

        d = duplex(benchmark_instance).makespan()
        assert d == min(
            min_min(benchmark_instance).makespan(),
            max_min(benchmark_instance).makespan(),
        )

    def test_minmin_near_best_on_benchmark(self, benchmark_instance, rng):
        # Braun et al.: Min-min is the strongest simple heuristic;
        # Sufferage occasionally edges it out on inconsistent matrices,
        # so assert top-2 rather than strict victory.
        scores = {
            name: fn(benchmark_instance, rng).makespan() for name, fn in HEURISTICS.items()
        }
        ranked = sorted(scores, key=scores.get)
        assert "min-min" in ranked[:2]
        # and it beats every load- or time-blind heuristic outright
        for weak in ("mct", "met", "olb", "random", "max-min"):
            assert scores["min-min"] < scores[weak]

"""Tests for the pluggable fitness functions."""

import numpy as np
import pytest

from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.cga.fitness import (
    FITNESS,
    makespan_fitness,
    resolve_fitness,
    weighted_fitness,
)
from repro.scheduling import flowtime, makespan
from repro.scheduling.schedule import compute_completion_times


@pytest.fixture
def state(tiny_instance, rng):
    s = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks).astype(np.int32)
    ct = compute_completion_times(tiny_instance, s)
    return s, ct


class TestMakespanFitness:
    def test_matches_objective(self, tiny_instance, state):
        s, ct = state
        assert makespan_fitness(s, ct, tiny_instance) == pytest.approx(
            makespan(tiny_instance, s)
        )


class TestWeightedFitness:
    def test_lambda_one_is_makespan(self, tiny_instance, state):
        s, ct = state
        assert weighted_fitness(s, ct, tiny_instance, lam=1.0) == pytest.approx(
            makespan_fitness(s, ct, tiny_instance)
        )

    def test_lambda_zero_is_mean_flowtime(self, tiny_instance, state):
        s, ct = state
        expected = flowtime(tiny_instance, s) / tiny_instance.ntasks
        assert weighted_fitness(s, ct, tiny_instance, lam=0.0) == pytest.approx(expected)

    def test_between_extremes(self, tiny_instance, state):
        s, ct = state
        lo = weighted_fitness(s, ct, tiny_instance, lam=0.0)
        hi = weighted_fitness(s, ct, tiny_instance, lam=1.0)
        mid = weighted_fitness(s, ct, tiny_instance, lam=0.5)
        assert min(lo, hi) <= mid <= max(lo, hi)


class TestRegistry:
    def test_names(self):
        assert set(FITNESS) == {"makespan", "makespan+flowtime"}

    def test_resolve(self):
        assert resolve_fitness("makespan") is makespan_fitness

    def test_resolve_unknown(self):
        with pytest.raises(KeyError, match="unknown fitness"):
            resolve_fitness("tardiness")

    def test_config_validation(self):
        with pytest.raises(ValueError, match="fitness"):
            CGAConfig(fitness="lateness")

    def test_config_resolves_fitness(self):
        ops = CGAConfig(fitness="makespan+flowtime").resolve()
        assert ops.fitness is weighted_fitness


class TestEnginesUnderWeightedFitness:
    CFG = CGAConfig(
        grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False,
        fitness="makespan+flowtime",
    )

    def test_async_runs_and_improves(self, small_instance):
        eng = AsyncCGA(small_instance, self.CFG, rng=1)
        initial = eng.pop.best()[1]
        res = eng.run(StopCondition(max_generations=8))
        assert res.best_fitness < initial

    def test_invariants_with_fitness_fn(self, small_instance):
        eng = AsyncCGA(small_instance, self.CFG, rng=1)
        eng.run(StopCondition(max_generations=4))
        eng.pop.check_invariants(fitness_fn=weighted_fitness)

    def test_weighted_run_gets_better_flowtime(self, small_instance):
        # optimizing the combined objective should cost little makespan
        # and buy flowtime relative to pure-makespan optimization
        budget = StopCondition(max_evaluations=1200)
        pure = AsyncCGA(
            small_instance, self.CFG.with_(fitness="makespan"), rng=7
        ).run(budget)
        mixed = AsyncCGA(small_instance, self.CFG, rng=7).run(budget)
        ft_pure = flowtime(small_instance, pure.best_assignment)
        ft_mixed = flowtime(small_instance, mixed.best_assignment)
        assert ft_mixed <= ft_pure * 1.02

    def test_sim_engine_accepts_weighted(self, tiny_instance):
        from repro.parallel import SimulatedPACGA

        sim = SimulatedPACGA(tiny_instance, self.CFG.with_(n_threads=2), seed=0)
        res = sim.run(StopCondition(max_generations=3))
        sim.pop.check_invariants(fitness_fn=weighted_fitness)
        assert res.best_fitness > 0

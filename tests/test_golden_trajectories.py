"""Golden-seed trajectory equivalence for the problems-layer refactor.

``tests/data/golden_independent.json`` pins the pre-refactor
best-fitness trajectory (history rows, final best, population digest)
of every deterministic engine on the independent workload.  This test
replays the same seeds through the refactored problem-dispatch path
and demands bit-identical results — the refactor's "zero behavioral
drift" acceptance gate.  Regenerate the file with::

    PYTHONPATH=src python tests/golden_capture.py
"""

import json

from tests.golden_capture import ENGINES, OUT, capture


def test_trajectories_match_golden_seeds():
    golden = json.loads(OUT.read_text())
    rows = capture()
    assert set(rows) == set(golden), "engine set drifted from the capture file"
    for key, row in rows.items():
        assert row == golden[key], f"trajectory drift in {key}"


def test_golden_file_covers_every_deterministic_engine():
    golden = json.loads(OUT.read_text())
    expected = {f"{name}({n})" for name, n, _ in ENGINES}
    assert set(golden) == expected

"""Tests for the multi-run runner and the report helpers."""

import numpy as np
import pytest

from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.experiments import ascii_table, format_float, run_many, write_csv
from repro.experiments.report import ascii_chart, ascii_series


CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False)


class TestRunMany:
    def _factory(self, instance):
        def factory(ss):
            return AsyncCGA(instance, CFG, rng=np.random.default_rng(ss)).run(
                StopCondition(max_generations=2)
            )

        return factory

    def test_collects_n_runs(self, tiny_instance):
        res = run_many(self._factory(tiny_instance), 4, master_seed=0, label="x")
        assert res.n_runs == 4
        assert res.label == "x"

    def test_runs_are_independent(self, tiny_instance):
        res = run_many(self._factory(tiny_instance), 5, master_seed=0)
        assert len(set(res.best_fitnesses.tolist())) > 1

    def test_reproducible(self, tiny_instance):
        a = run_many(self._factory(tiny_instance), 3, master_seed=1)
        b = run_many(self._factory(tiny_instance), 3, master_seed=1)
        assert np.array_equal(a.best_fitnesses, b.best_fitnesses)

    def test_run_i_stable_under_n_runs(self, tiny_instance):
        a = run_many(self._factory(tiny_instance), 2, master_seed=1)
        b = run_many(self._factory(tiny_instance), 4, master_seed=1)
        assert np.array_equal(a.best_fitnesses, b.best_fitnesses[:2])

    def test_stats_and_accessors(self, tiny_instance):
        res = run_many(self._factory(tiny_instance), 4, master_seed=0)
        stats = res.fitness_stats()
        assert stats.n == 4
        assert res.best_overall().best_fitness == res.best_fitnesses.min()
        assert res.mean_evaluations() == pytest.approx(res.evaluations.mean())

    def test_rejects_zero_runs(self, tiny_instance):
        with pytest.raises(ValueError):
            run_many(self._factory(tiny_instance), 0, master_seed=0)


class TestFormatFloat:
    def test_large_value_plain(self):
        assert format_float(7437591.3) == "7437591"

    def test_small_value_keeps_decimals(self):
        assert format_float(5240.1) == "5240.10"

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_infinity(self):
        assert format_float(float("inf")) == "inf"


class TestAsciiTable:
    def test_alignment(self):
        out = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            ascii_table(["a", "b"], [["1"]])

    def test_non_string_cells(self):
        out = ascii_table(["x"], [[42]])
        assert "42" in out


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "out.csv"
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart({}) == "(no data)"
        assert ascii_chart({"a": []}) == "(no data)"

    def test_renders_all_series_markers(self):
        out = ascii_chart({"one": [1, 2, 3], "two": [3, 2, 1]})
        assert "1=one" in out
        assert "2=two" in out
        assert "1" in out.splitlines()[0] or any("1" in l for l in out.splitlines())

    def test_dimensions(self):
        out = ascii_chart({"a": list(range(10))}, width=30, height=8)
        body_lines = [l for l in out.splitlines() if "|" in l]
        assert len(body_lines) == 8

    def test_constant_series_no_crash(self):
        out = ascii_chart({"flat": [5, 5, 5]})
        assert "flat" in out

    def test_labels(self):
        out = ascii_chart({"a": [1, 2]}, x_label="generations", y_label="makespan")
        assert "generations" in out
        assert "makespan" in out

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [1]}, width=4)

    def test_y_axis_ticks_span_range(self):
        out = ascii_chart({"a": [0.0, 100.0]})
        assert "100" in out
        assert "0" in out

    def test_different_lengths_allowed(self):
        out = ascii_chart({"short": [1, 2], "long": list(range(100))})
        assert "short" in out and "long" in out


class TestAsciiSeries:
    def test_empty(self):
        assert ascii_series([]) == ""

    def test_constant(self):
        out = ascii_series([5, 5, 5])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_monotone_ramp(self):
        out = ascii_series([0, 1, 2, 3, 4, 5, 6, 7])
        assert out[0] != out[-1]

    def test_downsampling(self):
        out = ascii_series(list(range(1000)), width=50)
        assert len(out) == 50

"""Batch vs scalar H2LL: identical accepted-move decisions, bitwise.

The shm engine breeds whole blocks with :func:`repro.kernels.batch_h2ll`
while the scalar engines run :func:`repro.cga.local_search.h2ll` per
cell.  With continuous random ETC values (no completion-time ties) the
two differ only in *how* the uniform task pick is drawn, not in which
move they accept: this property test aligns the draws — the batch
kernel's pick is replayed from a cloned RNG, and the scalar pass is
driven by a stub RNG forced to select the same task — and then demands
bit-identical ``s``/``ct`` rows, i.e. the same move applied (or the
same rejection) for every individual, every iteration.

Float layout matters for "bitwise": both implementations compute the
candidate score as one IEEE-double add (``ct[m] + etc[task, m]``) and
the vacated load as one subtract, so equality is exact, not approximate.
"""

import numpy as np
import pytest

from repro.cga.local_search import h2ll
from repro.kernels import batch_completion_times, batch_h2ll
from repro.kernels.batch_ls import _random_task_on


class _ForcedPick:
    """Stub RNG whose ``random(n)`` always lands on one chosen rank."""

    def __init__(self, value: float):
        self._value = value

    def random(self, n=None):
        if n is None:
            return self._value
        return np.full(n, self._value)


def _clone(rng: np.random.Generator) -> np.random.Generator:
    other = np.random.default_rng()
    other.bit_generator.state = rng.bit_generator.state
    return other


@pytest.mark.parametrize("seed", [0, 7, 1234])
def test_batch_and_scalar_accept_identical_moves(small_instance, seed):
    inst = small_instance
    rng = np.random.default_rng(seed)
    P = 24
    S = rng.integers(0, inst.nmachines, (P, inst.ntasks), dtype=np.int32)
    ct = batch_completion_times(inst, S)

    moved_rows = 0
    for _ in range(4):  # 4 iterations, population evolving in place
        s_pre, ct_pre = S.copy(), ct.copy()
        probe = _clone(rng)  # same state the batch kernel is about to use
        batch_h2ll(S, ct, inst, rng, iterations=1)

        # replay the batch kernel's task pick exactly
        worst = ct_pre.argmax(axis=1)
        task, found = _random_task_on(s_pre, worst, probe)

        for p in range(P):
            s_row, ct_row = s_pre[p].copy(), ct_pre[p].copy()
            if found[p]:
                tasks = np.flatnonzero(s_row == worst[p])
                rank = int(np.searchsorted(tasks, task[p]))
                assert tasks[rank] == task[p]
                stub = _ForcedPick((rank + 0.5) / tasks.size)
            else:
                stub = _ForcedPick(0.0)  # scalar finds no task and breaks
            h2ll(s_row, ct_row, inst, stub, iterations=1)

            # the decision (move vs reject) and its effect are identical
            assert np.array_equal(s_row, S[p]), f"row {p}: assignments differ"
            assert np.array_equal(ct_row, ct[p]), f"row {p}: loads differ"
            if not np.array_equal(s_row, s_pre[p]):
                moved_rows += 1

    assert moved_rows > 0  # the property is not vacuous


def test_batch_moves_strictly_reduce_makespan(tiny_instance):
    """Every accepted batch move lowers that row's makespan — the weaker
    invariant that holds even when tie-breaks could differ."""
    inst = tiny_instance
    rng = np.random.default_rng(3)
    P = 16
    S = rng.integers(0, inst.nmachines, (P, inst.ntasks), dtype=np.int32)
    ct = batch_completion_times(inst, S)
    before = ct.max(axis=1)
    moves = batch_h2ll(S, ct, inst, rng, iterations=5)
    assert moves > 0
    after = ct.max(axis=1)
    assert (after <= before).all()
    # incremental -= updates track the true loads to rounding error
    np.testing.assert_allclose(ct, batch_completion_times(inst, S), rtol=1e-12)

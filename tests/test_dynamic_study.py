"""Tests for the dynamic-grid policy study harness."""

import numpy as np
import pytest

from repro.dynamic.events import BatchArrival, MachineJoin, MachineLeave
from repro.experiments.dynamic_study import (
    DynamicStudyResult,
    dynamic_study,
    minmin_rescheduler,
    random_timeline,
)
from repro.dynamic.simulator import greedy_rescheduler


class TestRandomTimeline:
    def test_structure(self):
        rng = np.random.default_rng(0)
        speeds, events = random_timeline(rng, n_batches=4)
        assert len(speeds) == 6
        batches = [e for e in events if isinstance(e, BatchArrival)]
        assert len(batches) == 4
        assert any(isinstance(e, MachineLeave) for e in events)
        assert any(isinstance(e, MachineJoin) for e in events)

    def test_no_churn(self):
        rng = np.random.default_rng(0)
        _, events = random_timeline(rng, churn=False)
        assert all(isinstance(e, BatchArrival) for e in events)

    def test_deterministic(self):
        a = random_timeline(np.random.default_rng(7))
        b = random_timeline(np.random.default_rng(7))
        assert a[0] == b[0]
        assert [e.time for e in a[1]] == [e.time for e in b[1]]


class TestDynamicStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return dynamic_study(
            policies={"mct": greedy_rescheduler, "min-min": minmin_rescheduler},
            n_timelines=3,
            seed=2,
        )

    def test_policies_present(self, result):
        assert set(result.makespan) == {"mct", "min-min"}
        assert set(result.flowtime) == {"mct", "min-min"}

    def test_values_positive(self, result):
        for v in result.makespan.values():
            assert v > 0
        for v in result.flowtime.values():
            assert v > 0

    def test_best_policy_defined(self, result):
        assert result.best_policy() in ("mct", "min-min")

    def test_table_renders(self, result):
        out = result.table()
        assert "mean makespan" in out
        assert "mct" in out

    def test_reproducible(self):
        kwargs = dict(
            policies={"mct": greedy_rescheduler}, n_timelines=2, seed=5
        )
        a = dynamic_study(**kwargs)
        b = dynamic_study(**kwargs)
        assert a.makespan == b.makespan

    def test_rejects_zero_timelines(self):
        with pytest.raises(ValueError):
            dynamic_study(n_timelines=0)

"""Tests for the process-parallel PA-CGA engine (shared memory)."""

import numpy as np
import pytest

from repro.cga import CGAConfig, StopCondition
from repro.parallel import ProcessPACGA


CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=2, seed_with_minmin=False)


class TestProcessPACGA:
    def test_single_worker_inline(self, tiny_instance):
        eng = ProcessPACGA(tiny_instance, CFG.with_(n_threads=1), seed=0)
        res = eng.run(StopCondition(max_generations=3))
        assert res.generations == 3
        assert res.evaluations == 3 * 16

    def test_two_workers_share_population(self, tiny_instance):
        eng = ProcessPACGA(tiny_instance, CFG.with_(n_threads=2), seed=1)
        initial = eng.pop.fitness.copy()
        res = eng.run(StopCondition(max_generations=3))
        # the parent sees the children's writes through shared memory
        assert not np.array_equal(eng.pop.fitness, initial)
        assert res.evaluations > 0

    def test_population_consistent_after_run(self, tiny_instance):
        eng = ProcessPACGA(tiny_instance, CFG.with_(n_threads=2), seed=2)
        eng.run(StopCondition(max_generations=4))
        eng.pop.check_invariants()

    def test_best_fitness_reflects_shared_state(self, tiny_instance):
        eng = ProcessPACGA(tiny_instance, CFG.with_(n_threads=2), seed=3)
        res = eng.run(StopCondition(max_generations=3))
        assert res.best_fitness == pytest.approx(eng.pop.fitness.min())

    def test_per_worker_counts_reported(self, tiny_instance):
        eng = ProcessPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0)
        res = eng.run(StopCondition(max_generations=2))
        per = res.extra["per_thread_evaluations"]
        assert len(per) == 2
        assert all(c > 0 for c in per)

    def test_shared_buffers_backing(self, tiny_instance):
        eng = ProcessPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0)
        # population arrays must be the RawArray-backed buffers
        assert not eng.pop.s.flags["OWNDATA"]
        assert not eng.pop.ct.flags["OWNDATA"]

    def test_best_assignment_valid(self, tiny_instance):
        from repro.scheduling import validate_assignment

        eng = ProcessPACGA(tiny_instance, CFG.with_(n_threads=2), seed=5)
        res = eng.run(StopCondition(max_generations=3))
        validate_assignment(tiny_instance, res.best_assignment)

"""Tests for the virtual-time discrete-event PA-CGA simulator."""

import numpy as np
import pytest

from repro.cga import CGAConfig, StopCondition
from repro.parallel import CostModel, SimulatedPACGA


CFG = CGAConfig(grid_rows=6, grid_cols=6, ls_iterations=2, seed_with_minmin=False)
FAST = CostModel(jitter_sigma=0.0)


class TestDeterminism:
    def test_same_seed_same_outcome(self, tiny_instance):
        r1 = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=3), seed=5).run(
            StopCondition(virtual_time=0.003)
        )
        r2 = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=3), seed=5).run(
            StopCondition(virtual_time=0.003)
        )
        assert r1.best_fitness == r2.best_fitness
        assert r1.evaluations == r2.evaluations
        assert np.array_equal(r1.best_assignment, r2.best_assignment)

    def test_different_seed_differs(self, tiny_instance):
        r1 = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=3), seed=1).run(
            StopCondition(virtual_time=0.003)
        )
        r2 = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=3), seed=2).run(
            StopCondition(virtual_time=0.003)
        )
        assert r1.best_fitness != r2.best_fitness or r1.evaluations != r2.evaluations

    def test_cost_model_does_not_touch_genetics(self, tiny_instance):
        # same seed, different cost model: same generation count => the
        # genetic stream must produce the same first-sweep population
        a = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=1), seed=3, cost_model=FAST)
        b = SimulatedPACGA(
            tiny_instance,
            CFG.with_(n_threads=1),
            seed=3,
            cost_model=CostModel(t_breed=50.0, jitter_sigma=0.0),
        )
        ra = a.run(StopCondition(max_generations=2))
        rb = b.run(StopCondition(max_generations=2))
        assert ra.best_fitness == rb.best_fitness


class TestStopConditions:
    def test_virtual_time_budget(self, tiny_instance):
        res = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0).run(
            StopCondition(virtual_time=0.002)
        )
        # every thread's clock reached the budget (possibly overran by a sweep)
        assert all(c >= 0.002 for c in res.extra["per_thread_clocks"])

    def test_overrun_bounded_by_one_sweep(self, tiny_instance):
        model = FAST
        sim = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=2), seed=0, cost_model=model
        )
        budget = 0.002
        res = sim.run(StopCondition(virtual_time=budget))
        block = 18  # 36 cells over 2 threads
        worst_step = model.step_cost(2, 2, True) * 1e-6
        for clock in res.extra["per_thread_clocks"]:
            assert clock <= budget + block * worst_step + 1e-12

    def test_max_evaluations(self, tiny_instance):
        res = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=3), seed=0).run(
            StopCondition(max_evaluations=100)
        )
        assert res.evaluations == 100

    def test_max_generations(self, tiny_instance):
        res = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0).run(
            StopCondition(max_generations=3)
        )
        assert all(g >= 3 for g in res.extra["per_thread_generations"])

    def test_requires_sim_compatible_bound(self, tiny_instance):
        sim = SimulatedPACGA(tiny_instance, CFG, seed=0)
        with pytest.raises(ValueError, match="virtual_time"):
            sim.run(StopCondition(wall_time_s=1.0))


class TestSemantics:
    def test_single_thread_matches_canonical_order(self, tiny_instance):
        # with one logical thread the schedule is one fixed line sweep
        sim = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=1), seed=0)
        res = sim.run(StopCondition(max_generations=2))
        assert res.extra["per_thread_generations"] == [2]
        assert res.evaluations == 2 * 36

    def test_boundary_fraction_zero_single_thread(self, tiny_instance):
        sim = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=1), seed=0)
        assert sim.boundary_fraction == 0.0

    def test_boundary_fraction_grows(self, tiny_instance):
        fracs = [
            SimulatedPACGA(tiny_instance, CFG.with_(n_threads=n), seed=0).boundary_fraction
            for n in (2, 3, 4)
        ]
        assert fracs[0] < fracs[-1]

    def test_population_invariants_after_run(self, tiny_instance):
        sim = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=4), seed=7)
        sim.run(StopCondition(virtual_time=0.005))
        sim.pop.check_invariants()

    def test_history_records_mean_and_best(self, tiny_instance):
        sim = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0)
        res = sim.run(StopCondition(max_generations=4))
        assert len(res.history) > 1
        for gen, evals, best, mean in res.history:
            assert best <= mean

    def test_history_stride(self, tiny_instance):
        dense = SimulatedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0)
        sparse = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=2), seed=0, history_stride=4
        )
        rd = dense.run(StopCondition(max_generations=4))
        rs = sparse.run(StopCondition(max_generations=4))
        assert len(rs.history) < len(rd.history)

    def test_invalid_history_stride(self, tiny_instance):
        with pytest.raises(ValueError):
            SimulatedPACGA(tiny_instance, CFG, seed=0, history_stride=0)

    def test_more_ls_fewer_evaluations_per_budget(self, tiny_instance):
        # LS makes each step cost more virtual time
        light = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=1, ls_iterations=0), seed=0, cost_model=FAST
        ).run(StopCondition(virtual_time=0.01))
        heavy = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=1, ls_iterations=10), seed=0, cost_model=FAST
        ).run(StopCondition(virtual_time=0.01))
        assert heavy.evaluations < light.evaluations

    def test_improves_over_initial(self, small_instance):
        sim = SimulatedPACGA(small_instance, CFG.with_(n_threads=3), seed=0)
        initial = sim.pop.best()[1]
        res = sim.run(StopCondition(virtual_time=0.01))
        assert res.best_fitness < initial

"""Search-dynamics layer: grid snapshots, timelines, operator attribution."""

import json
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import pytest

from repro.obs import GridDynamics, attribution_summary, record_batch_attribution
from repro.obs.dynamics import (
    ATTRIBUTION_PHASES,
    entropy_timeline,
    estimate_takeover_generation,
    fitness_entropy,
    load_grid_rows,
    selection_pressure_timeline,
    takeover_curve,
    takeover_fraction,
)
from repro.obs.instrument import instrumented_ops
from repro.obs.metrics import MetricRecorder


class TestTakeoverFraction:
    def test_half_grid_at_best(self):
        assert takeover_fraction(np.array([1.0, 1.0, 2.0, 3.0])) == 0.5

    def test_converged_grid_is_one(self):
        assert takeover_fraction(np.full(9, 5.0)) == 1.0

    def test_empty_is_zero(self):
        assert takeover_fraction(np.array([])) == 0.0

    def test_rel_tol_absorbs_float_noise(self):
        best = 1e9
        fit = np.array([best, best * (1 + 1e-14), best * 1.5])
        assert takeover_fraction(fit) == pytest.approx(2 / 3)


class TestFitnessEntropy:
    def test_converged_grid_is_zero(self):
        assert fitness_entropy(np.full(16, 3.0)) == 0.0

    def test_empty_is_zero(self):
        assert fitness_entropy(np.array([])) == 0.0

    def test_two_even_buckets(self):
        # half the cells at each extreme: 2 of 16 bins occupied evenly
        # -> H = ln 2 / ln 16 = 0.25 exactly
        fit = np.array([1.0] * 8 + [2.0] * 8)
        assert fitness_entropy(fit) == pytest.approx(0.25)

    def test_sub_ulp_range_counts_as_converged(self):
        # a spread too small for 16 finite-sized histogram bins must not
        # crash the sampler (seen live on zero-copy threaded reads)
        fit = np.full(16, 7.5e6)
        fit[0] = np.nextafter(7.5e6, np.inf)
        assert fitness_entropy(fit) == 0.0

    def test_transient_nonfinite_cells_are_tolerated(self):
        fit = np.array([1.0, 2.0, np.inf, np.nan])
        assert 0.0 <= fitness_entropy(fit) <= 1.0
        assert fitness_entropy(np.array([np.inf, np.nan])) == 0.0

    def test_normalized_to_unit_interval(self):
        rng = np.random.default_rng(0)
        fit = rng.random(256)
        assert 0.0 < fitness_entropy(fit) <= 1.0


class TestGridDynamics:
    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            GridDynamics(0, 4)
        with pytest.raises(ValueError):
            GridDynamics(4, 4, keep_rows=1)

    def test_rejects_mismatched_fitness(self):
        dyn = GridDynamics(2, 3)
        with pytest.raises(ValueError, match="grid is 2x3"):
            dyn.snapshot(np.zeros(5), generation=0, t_s=0.0)

    def test_snapshot_schema(self):
        dyn = GridDynamics(2, 2)
        row = dyn.snapshot(np.array([4.0, 3.0, 2.0, 1.0]), generation=7, t_s=1.5)
        assert set(row) == {
            "t_s",
            "generation",
            "shape",
            "best",
            "mean",
            "takeover_fraction",
            "fitness_entropy",
            "fitness",
            "age",
            "improvements",
        }
        assert row["shape"] == [2, 2]
        assert row["generation"] == 7
        assert row["best"] == 1.0
        assert row["mean"] == 2.5
        assert len(row["fitness"]) == len(row["age"]) == len(row["improvements"]) == 4
        assert dyn.latest is row

    def test_age_and_improvement_tracking(self):
        dyn = GridDynamics(1, 3)
        dyn.snapshot(np.array([5.0, 5.0, 5.0]), generation=0, t_s=0.0)
        # cell 0 improves, cell 1 worsens (changed, not improved), cell 2 idle
        row = dyn.snapshot(np.array([4.0, 6.0, 5.0]), generation=1, t_s=1.0)
        assert row["improvements"] == [1, 0, 0]
        assert row["age"] == [0, 0, 2]
        row = dyn.snapshot(np.array([4.0, 6.0, 5.0]), generation=2, t_s=2.0)
        assert row["improvements"] == [1, 0, 0]
        assert row["age"] == [1, 1, 3]

    def test_keep_rows_retains_baseline_and_tail(self):
        dyn = GridDynamics(1, 2, keep_rows=3)
        for g in range(6):
            dyn.snapshot(np.array([6.0 - g, 6.0]), generation=g, t_s=float(g))
        assert dyn.n_total == 6
        assert len(dyn.rows) == 3
        assert dyn.rows[0]["generation"] == 0  # baseline survives eviction
        assert [r["generation"] for r in dyn.rows[1:]] == [4, 5]

    def test_streaming_keeps_every_row(self, tmp_path):
        path = tmp_path / "bundle" / "grid.jsonl"
        dyn = GridDynamics(1, 2, stream_to=path, keep_rows=2)
        for g in range(5):
            dyn.snapshot(np.array([5.0 - g, 5.0]), generation=g, t_s=float(g))
        dyn.close()
        dyn.close()  # idempotent
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["generation"] for r in rows] == [0, 1, 2, 3, 4]
        assert load_grid_rows(tmp_path / "bundle") == rows

    def test_load_grid_rows_missing_bundle(self, tmp_path):
        assert load_grid_rows(tmp_path) == []


class TestTimelines:
    def rows(self):
        return [
            {"t_s": 0.0, "generation": 0, "takeover_fraction": 0.1, "fitness_entropy": 0.9},
            {"t_s": 1.0, "generation": 4, "takeover_fraction": 0.3, "fitness_entropy": 0.6},
            {"t_s": 2.0, "generation": 9, "takeover_fraction": 0.7, "fitness_entropy": 0.2},
        ]

    def test_takeover_curve(self):
        assert takeover_curve(self.rows()) == [(0.0, 0.1), (1.0, 0.3), (2.0, 0.7)]

    def test_estimate_takeover_generation(self):
        assert estimate_takeover_generation(self.rows()) == 9
        assert estimate_takeover_generation(self.rows(), threshold=0.25) == 4
        assert estimate_takeover_generation(self.rows(), threshold=0.99) is None
        assert estimate_takeover_generation([]) is None

    def test_selection_pressure_timeline(self):
        timeline = selection_pressure_timeline(self.rows())
        assert [t["growth"] for t in timeline] == [
            pytest.approx(0.2),
            pytest.approx(0.4),
        ]
        assert timeline[0]["generation"] == 4

    def test_entropy_timeline(self):
        assert entropy_timeline(self.rows()) == [(0.0, 0.9), (1.0, 0.6), (2.0, 0.2)]


class TestAttributionSummary:
    def test_skips_silent_phases_and_orders_by_breeding(self):
        counters = {
            "op.ls.attempts": 10.0,
            "op.ls.successes": 4.0,
            "op.ls.delta": 12.5,
            "op.crossover.attempts": 20.0,
            "op.crossover.successes": 5.0,
            "op.crossover.delta": 9.0,
        }
        rows = attribution_summary(counters)
        assert [r["phase"] for r in rows] == ["crossover", "ls"]
        assert rows[0]["success_rate"] == 0.25
        assert rows[1] == {
            "phase": "ls",
            "attempts": 10,
            "successes": 4,
            "success_rate": 0.4,
            "delta": 12.5,
        }

    def test_empty_counters(self):
        assert attribution_summary({}) == []


@dataclass(frozen=True)
class FakeOps:
    """EvolutionOps-shaped bundle for driving the scalar wrappers."""

    select: Callable
    crossover: Callable
    mutate: Callable
    fitness: Callable
    local_search: Optional[Callable]
    replace: Callable


class TestAttributionParity:
    """Acceptance: scalar and batch attribution agree in lockstep.

    The same sequence of breeding outcomes (operator-applied masks,
    child/incumbent fitness pairs, acceptance decisions) is fed once
    through the scalar ``instrumented_ops`` wrappers and once through
    ``record_batch_attribution``; attempt and success counts must be
    bit-identical, deltas equal up to float summation order.
    """

    def drive_scalar(self, counters_out, cx, mut, ls, child_fit, incumbent_fit):
        rec = MetricRecorder("scalar")
        accept_next = {}

        def replace_rule(child, current):
            return accept_next["value"]

        ops = instrumented_ops(
            FakeOps(
                select=lambda fit, rng: 0,
                crossover=lambda p1, p2, rng: p1,
                mutate=lambda s, ct, inst, rng: s,
                fitness=lambda s, ct, inst: 0.0,
                local_search=lambda s, ct, inst, rng, iters, n_candidates=None, stats=None: s,
                replace=replace_rule,
            ),
            rec,
        )
        for i in range(len(child_fit)):
            if cx[i]:
                ops.crossover(None, None, None)
            if mut[i]:
                ops.mutate(None, None, None, None)
            if ls[i]:
                ops.local_search(None, None, None, None, 10)
            accept_next["value"] = bool(child_fit[i] < incumbent_fit[i])
            ops.replace(child_fit[i], incumbent_fit[i])
        counters_out.update(rec.counters)

    def test_scalar_vs_batch_counts_identical(self):
        rng = np.random.default_rng(42)
        n = 256
        cx = rng.random(n) < 0.8
        mut = rng.random(n) < 0.3
        ls = rng.random(n) < 0.5
        incumbent = rng.random(n) * 100.0
        child = incumbent + rng.normal(0.0, 10.0, n)
        accept = child < incumbent

        scalar: dict = {}
        self.drive_scalar(scalar, cx, mut, ls, child, incumbent)
        batch: dict = {}
        record_batch_attribution(
            batch, accept, child, incumbent, crossover=cx, mutation=mut, ls=ls
        )

        for phase in ATTRIBUTION_PHASES:
            for metric in ("attempts", "successes"):
                key = f"op.{phase}.{metric}"
                assert int(scalar.get(key, 0)) == int(batch.get(key, 0)), key
            key = f"op.{phase}.delta"
            assert np.isclose(scalar.get(key, 0.0), batch.get(key, 0.0)), key
        # and the test exercised something real on both sides
        assert batch["op.replacement.attempts"] == n
        assert 0 < batch["op.ls.successes"] < batch["op.ls.attempts"]

    def test_disabled_phase_emits_no_keys(self):
        batch: dict = {}
        record_batch_attribution(
            batch,
            np.array([True, False]),
            np.array([1.0, 5.0]),
            np.array([2.0, 4.0]),
            crossover=np.array([True, True]),
        )
        assert "op.mutation.attempts" not in batch
        assert "op.ls.attempts" not in batch
        assert batch["op.crossover.attempts"] == 2
        assert batch["op.crossover.successes"] == 1
        assert batch["op.crossover.delta"] == pytest.approx(1.0)
        assert batch["op.replacement.delta"] == pytest.approx(1.0)

"""Live export: OpenMetrics rendering, atomic live.json, HTTP endpoint."""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cga import CGAConfig, StopCondition
from repro.obs import Observer
from repro.obs.live import (
    OPENMETRICS_CONTENT_TYPE,
    LivePublisher,
    atomic_write_json,
    render_openmetrics,
    render_watch,
    watch,
)
from repro.parallel import ThreadedPACGA


CFG = CGAConfig(grid_rows=6, grid_cols=6, ls_iterations=2, seed_with_minmin=False)

GOLDEN_MERGED = {
    "counters": {"breeding.evaluations": 128.0, "sweeps": 4},
    "gauges": {"pop.best": 42.5, "per.thread{t=1}": 1.0},
    "histograms": {
        "sweep_us": {"bounds": [10, 100], "counts": [3, 2, 1], "count": 6, "sum": 250.0}
    },
}
GOLDEN_PROGRESS = {
    "generation": 7,
    "evaluations": 128,
    "best": 42.5,
    "elapsed_s": 1.5,
    "heartbeats": [3, 4],
    "workers_done": [0, 1],
}
GOLDEN_EXPOSITION = """\
# TYPE repro_run_generation gauge
repro_run_generation 7
# TYPE repro_run_evaluations gauge
repro_run_evaluations 128
# TYPE repro_run_best_fitness gauge
repro_run_best_fitness 42.5
# TYPE repro_run_elapsed_seconds gauge
repro_run_elapsed_seconds 1.5
# TYPE repro_worker_heartbeat counter
repro_worker_heartbeat_total{worker="0"} 3
repro_worker_heartbeat_total{worker="1"} 4
# TYPE repro_worker_done gauge
repro_worker_done{worker="0"} 0
repro_worker_done{worker="1"} 1
# TYPE repro_breeding_evaluations counter
repro_breeding_evaluations_total 128
# TYPE repro_sweeps counter
repro_sweeps_total 4
# TYPE repro_pop_best gauge
repro_pop_best 42.5
# TYPE repro_sweep_us histogram
repro_sweep_us_bucket{le="10"} 3
repro_sweep_us_bucket{le="100"} 5
repro_sweep_us_bucket{le="+Inf"} 6
repro_sweep_us_sum 250
repro_sweep_us_count 6
# EOF
"""


class TestOpenMetrics:
    def test_golden_exposition(self):
        """The full exposition format is pinned byte for byte: # TYPE
        lines, _total counter suffix, cumulative histogram buckets with
        le labels, +Inf bucket, # EOF terminator."""
        assert render_openmetrics(GOLDEN_MERGED, GOLDEN_PROGRESS) == GOLDEN_EXPOSITION

    def test_empty_snapshot_is_valid(self):
        out = render_openmetrics({})
        assert out == "# EOF\n"

    def test_no_progress_skips_run_gauges(self):
        out = render_openmetrics({"counters": {"x": 1.0}})
        assert out == "# TYPE repro_x counter\nrepro_x_total 1\n# EOF\n"

    def test_labeled_merge_gauges_are_skipped(self):
        out = render_openmetrics({"gauges": {"a{t=0}": 1.0}})
        assert "a_t" not in out

    def test_rendering_real_recorder_snapshot(self):
        obs = Observer(out=None, sample_every_evals=64)
        rec = obs.recorder(0)
        rec.inc("breeding.evaluations", 10)
        rec.observe("sweep_us", 12.0)
        text = render_openmetrics(obs.registry.merged().snapshot())
        assert "repro_breeding_evaluations_total 10" in text
        assert text.endswith("# EOF\n")
        assert 'repro_sweep_us_bucket{le="+Inf"} 1' in text


class TestAtomicWrite:
    def test_write_and_replace(self, tmp_path):
        target = tmp_path / "live.json"
        atomic_write_json(target, {"a": 1})
        atomic_write_json(target, {"a": 2})
        assert json.loads(target.read_text()) == {"a": 2}
        # the temp file never survives
        assert [p.name for p in tmp_path.iterdir()] == ["live.json"]


class TestLivePublisher:
    def _observer(self, tmp_path, **kw):
        obs = Observer(out=tmp_path / "bundle", sample_every_evals=10**9, **kw)
        obs.meta.update({"engine": "threads", "instance": "tiny", "n_threads": 2})
        return obs

    def test_publish_writes_snapshot(self, tmp_path):
        obs = self._observer(tmp_path, live=True)
        obs.recorder(0).inc("breeding.evaluations", 5)
        pub = LivePublisher(
            obs, progress=lambda: {"generation": 1, "evaluations": 5, "best": 9.0},
            out=obs.out,
        )
        snap = pub.publish()
        on_disk = json.loads((obs.out / "live.json").read_text())
        assert on_disk == snap
        assert on_disk["meta"]["engine"] == "threads"
        assert on_disk["progress"]["evaluations"] == 5
        assert on_disk["progress"]["evals_per_s"] > 0
        assert on_disk["metrics"]["counters"]["breeding.evaluations"] == 5.0
        assert pub.n_published == 1

    def test_invalid_cadence(self, tmp_path):
        obs = self._observer(tmp_path, live=True)
        with pytest.raises(ValueError):
            LivePublisher(obs, out=obs.out, every_s=0.0)

    def test_snapshot_carries_latest_resources(self, tmp_path):
        obs = self._observer(tmp_path, live=True, resources=True)
        try:
            pub = LivePublisher(obs, out=obs.out)
            snap = pub.publish()
            res = snap["resources"]
            assert res["rss_mb"] > 0
            assert res["peak_rss_mb"] >= res["rss_mb"] - 1.0
            from repro.obs.live import render_watch

            assert "resources" in render_watch(snap)
        finally:
            obs.finalize()

    def test_start_runtime_is_noop_without_live_settings(self, tmp_path):
        obs = Observer(out=tmp_path / "b", sample_every_evals=10**9)
        assert not obs.runtime_wanted
        obs.start_runtime(progress=lambda: {})
        assert obs.publisher is None and obs.watchdog is None

    def test_http_endpoint(self, tmp_path):
        obs = self._observer(tmp_path, live_port=0)
        obs.recorder(0).inc("breeding.evaluations", 7)
        obs.start_runtime(progress=lambda: {"generation": 2, "evaluations": 7, "best": 3.5})
        try:
            port = obs.publisher.port
            assert port != 0  # ephemeral port resolved at bind time
            base = f"http://127.0.0.1:{port}"

            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
                body = resp.read().decode()
                assert resp.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            assert "repro_breeding_evaluations_total 7" in body
            assert body.endswith("# EOF\n")
            assert "repro_run_evaluations 7" in body

            with urllib.request.urlopen(f"{base}/live.json", timeout=5) as resp:
                snap = json.loads(resp.read().decode())
            assert snap["progress"]["generation"] == 2
            assert snap["metrics"]["counters"]["breeding.evaluations"] == 7.0

            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert err.value.code == 404
        finally:
            obs.stop_runtime()
        assert obs.publisher is None

    def test_threaded_live_counts_match_finalized_bundle(self, tiny_instance, tmp_path):
        """Acceptance: live.json after the run carries the same
        evaluation counts as the finalized bundle."""
        out = tmp_path / "bundle"
        obs = Observer(out=out, sample_every_evals=64, live=True, live_every_s=0.05)
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0, obs=obs)
        res = eng.run(StopCondition(max_evaluations=288))
        obs.finalize(meta={"engine": "threads"})

        live = json.loads((out / "live.json").read_text())
        metrics = json.loads((out / "metrics.json").read_text())
        assert (
            live["metrics"]["counters"]["breeding.evaluations"]
            == metrics["merged"]["counters"]["breeding.evaluations"]
        )
        assert live["progress"]["evaluations"] == res.evaluations
        assert live["progress"]["heartbeats"] == [g for g in res.extra["per_thread_generations"]]
        assert live["progress"]["workers_done"] == [True, True]
        # live.json rides along in the bundle next to the usual artifacts
        names = {p.name for p in out.iterdir()}
        assert "live.json" in names and "metrics.json" in names

    def test_live_served_during_run(self, tiny_instance, tmp_path):
        """/metrics responds while the engine is mid-run."""
        out = tmp_path / "bundle"
        obs = Observer(
            out=out, sample_every_evals=64, live_port=0, live_every_s=0.02
        )
        eng = ThreadedPACGA(tiny_instance, CFG.with_(n_threads=2), seed=0, obs=obs)
        bodies = []

        def scrape():
            port = obs.publisher.port
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as resp:
                bodies.append(resp.read().decode())

        runner = threading.Thread(
            target=lambda: eng.run(StopCondition(wall_time_s=0.6))
        )
        runner.start()
        try:
            for _ in range(200):  # wait for the publisher to come up
                if obs.publisher is not None and obs.publisher.port:
                    break
                import time

                time.sleep(0.005)
            assert obs.publisher is not None, "publisher must start with the run"
            scrape()
        finally:
            runner.join()
        obs.finalize()
        assert bodies and "repro_run_evaluations" in bodies[0]
        assert obs.publisher is None  # torn down with the run


class TestWatchView:
    SNAP = {
        "updated_t_s": 3.2,
        "meta": {"engine": "threads", "instance": "tiny", "n_threads": 2},
        "progress": {
            "generation": 5,
            "evaluations": 720,
            "best": 81.25,
            "evals_per_s": 225.0,
            "heartbeats": [5, 6],
            "workers_done": [0, 1],
        },
        "metrics": {"counters": {"breeding.evaluations": 720.0, "watchdog.stalls": 1.0}},
    }

    def test_render_watch(self):
        text = render_watch(self.SNAP)
        assert "engine=threads" in text
        assert "evaluations : 720" in text
        assert "w0:5 (live)" in text and "w1:6 (done)" in text
        assert "stalls      : 1" in text

    def test_watch_once(self, tmp_path):
        (tmp_path / "live.json").write_text(json.dumps(self.SNAP))
        buf = io.StringIO()
        assert watch(tmp_path, once=True, out=buf) == 0
        assert "engine=threads" in buf.getvalue()

    def test_watch_once_waiting(self, tmp_path):
        buf = io.StringIO()
        assert watch(tmp_path, once=True, out=buf) == 0
        assert "waiting for" in buf.getvalue()

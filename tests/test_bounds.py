"""Tests for the LP makespan lower bound."""

import numpy as np
import pytest

from repro.etc import ETCMatrix, make_instance
from repro.heuristics import min_min
from repro.scheduling.bounds import combined_lower_bound, lp_lower_bound


class TestLPLowerBound:
    def test_below_every_heuristic(self, small_instance, rng):
        lb = lp_lower_bound(small_instance)
        from repro.heuristics import HEURISTICS

        for fn in HEURISTICS.values():
            assert fn(small_instance, rng).makespan() >= lb - 1e-6

    def test_tighter_than_area_bound(self, benchmark_instance):
        # on heterogeneous instances the LP dominates the naive bound
        lp = lp_lower_bound(benchmark_instance)
        area = benchmark_instance.makespan_lower_bound()
        assert lp >= area - 1e-6

    def test_exact_on_identical_machines(self):
        # 4 unit tasks on 2 equal machines: fractional optimum = 2
        inst = ETCMatrix(np.ones((4, 2)))
        assert lp_lower_bound(inst) == pytest.approx(2.0)

    def test_single_machine_equals_total(self):
        inst = make_instance(10, 1, seed=0)
        assert lp_lower_bound(inst) == pytest.approx(inst.etc[:, 0].sum())

    def test_respects_ready_times(self):
        etc = np.ones((2, 2))
        busy = ETCMatrix(etc, ready_times=np.array([10.0, 0.0]))
        # eq. 3's makespan is max over *completion times*, and a busy
        # machine completes its previous work at t=10 even if it gets no
        # new task — the bound must include that
        assert lp_lower_bound(busy) == pytest.approx(10.0)

    def test_ready_times_below_horizon_do_not_bind(self):
        etc = np.ones((2, 2)) * 5.0
        busy = ETCMatrix(etc, ready_times=np.array([1.0, 0.0]))
        # balanced fractional optimum: (1 + 0 + 10 units of work) / 2
        assert lp_lower_bound(busy) == pytest.approx(5.5)

    def test_achievable_gap_is_small_on_benchmark(self, benchmark_instance):
        lb = lp_lower_bound(benchmark_instance)
        ub = min_min(benchmark_instance).makespan()
        assert lb <= ub
        assert ub / lb < 1.6  # Min-min lands within 60% of the LP bound

    def test_combined_bound_max_of_both(self, small_instance):
        combined = combined_lower_bound(small_instance)
        assert combined == pytest.approx(
            max(lp_lower_bound(small_instance), small_instance.makespan_lower_bound())
        )


class TestLPAgainstOptimal:
    def test_two_task_instance_lp_equals_preemptive_optimum(self):
        # tasks: fast on opposite machines; LP splits nothing (perfect fit)
        inst = ETCMatrix(np.array([[1.0, 10.0], [10.0, 1.0]]))
        assert lp_lower_bound(inst) == pytest.approx(1.0)

    def test_fractional_split(self):
        # one task, two equal machines: LP halves it
        inst = ETCMatrix(np.array([[4.0, 4.0]]))
        assert lp_lower_bound(inst) == pytest.approx(2.0)

"""Property-based tests for grids, neighborhoods, generator and stats."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.cga.grid import Grid2D
from repro.cga.neighborhood import NEIGHBORHOODS, neighbor_table
from repro.etc.generator import ETCGeneratorSpec, generate_etc, rescale_to_range
from repro.etc.model import Consistency
from repro.experiments.stats import summarize


grids = st.builds(
    Grid2D, st.integers(2, 12), st.integers(2, 12)
)


@given(grids, st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_grid_coords_roundtrip(grid, idx):
    idx = idx % grid.size
    r, c = grid.coords(idx)
    assert grid.index(r, c) == idx


@given(grids, st.integers(-30, 30), st.integers(-30, 30))
@settings(max_examples=60, deadline=None)
def test_grid_index_wraps(grid, r, c):
    idx = int(grid.index(r, c))
    assert 0 <= idx < grid.size


@given(grids, st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_partition_covers_population_exactly(grid, n_blocks):
    assume(n_blocks <= grid.size)
    blocks = grid.partition(n_blocks)
    joined = np.concatenate(blocks)
    assert np.array_equal(joined, np.arange(grid.size))
    sizes = [len(b) for b in blocks]
    assert max(sizes) - min(sizes) <= 1


@given(grids, st.sampled_from(sorted(NEIGHBORHOODS)))
@settings(max_examples=40, deadline=None)
def test_neighbor_table_indices_valid_and_self_first(grid, name):
    assume(grid.rows >= 5 and grid.cols >= 5)  # avoid wrap aliasing
    tbl = neighbor_table(grid, name)
    assert tbl.shape == (grid.size, len(NEIGHBORHOODS[name]))
    assert np.array_equal(tbl[:, 0], np.arange(grid.size))
    assert tbl.min() >= 0 and tbl.max() < grid.size


@given(grids)
@settings(max_examples=40, deadline=None)
def test_l5_neighbors_at_manhattan_distance_one(grid):
    assume(grid.rows >= 3 and grid.cols >= 3)
    tbl = neighbor_table(grid, "l5")
    for i in range(0, grid.size, max(1, grid.size // 7)):
        for j in tbl[i, 1:]:
            assert grid.manhattan(i, int(j)) == 1


@given(
    st.integers(2, 30),
    st.integers(2, 6),
    st.sampled_from(["c", "i", "s"]),
    st.integers(0, 10**6),
)
@settings(max_examples=50, deadline=None)
def test_generator_output_well_formed(ntasks, nmachines, cons, seed):
    spec = ETCGeneratorSpec(
        ntasks=ntasks, nmachines=nmachines, consistency=Consistency(cons)
    )
    m = generate_etc(spec, rng=seed)
    assert m.etc.shape == (ntasks, nmachines)
    assert m.pj_min >= 1.0
    if cons == "c":
        assert np.all(np.diff(m.etc, axis=1) >= 0)


@given(
    st.integers(0, 10**6),
    st.floats(0.1, 100.0),
    st.floats(101.0, 10**7),
)
@settings(max_examples=50, deadline=None)
def test_rescale_hits_target_range(seed, lo, hi):
    m = generate_etc(ETCGeneratorSpec(ntasks=20, nmachines=4), rng=seed)
    out = rescale_to_range(m, lo, hi)
    assert np.isclose(out.pj_min, lo, rtol=1e-9)
    assert np.isclose(out.pj_max, hi, rtol=1e-9)
    assert out.pj_min >= lo  # clip guarantees no undershoot


@given(st.lists(st.floats(1.0, 1e6), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_summarize_orderings(xs):
    s = summarize(xs)
    assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
    eps = 1e-9 * max(1.0, abs(s.maximum))
    assert s.minimum - eps <= s.mean <= s.maximum + eps
    assert s.notch_lo <= s.median <= s.notch_hi


@given(
    st.lists(st.floats(1.0, 1e6), min_size=2, max_size=60),
    st.floats(1.0, 2.0),
)
@settings(max_examples=40, deadline=None)
def test_summarize_shift_equivariance(xs, scale):
    a = summarize(xs)
    b = summarize([x * scale for x in xs])
    assert np.isclose(b.mean, a.mean * scale, rtol=1e-9)
    assert np.isclose(b.median, a.median * scale, rtol=1e-9)

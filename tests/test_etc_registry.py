"""Tests for the benchmark instance registry."""

import numpy as np
import pytest

from repro.etc import BENCHMARK_INSTANCES, Consistency, instance_names, load_benchmark
from repro.etc.registry import BENCHMARK_NMACHINES, BENCHMARK_NTASKS


class TestRegistryContents:
    def test_twelve_instances(self):
        assert len(BENCHMARK_INSTANCES) == 12

    def test_names_match_paper_pattern(self):
        for name in instance_names():
            assert name.startswith("u_")
            assert name.endswith(".0")

    def test_all_combinations_present(self):
        kinds = {(i.consistency.value, i.task_het, i.machine_het) for i in BENCHMARK_INSTANCES.values()}
        assert len(kinds) == 12

    def test_published_ranges_are_positive_and_ordered(self):
        for info in BENCHMARK_INSTANCES.values():
            assert 0 < info.pj_min < info.pj_max

    def test_blazewicz_notation_environment(self):
        assert BENCHMARK_INSTANCES["u_c_hihi.0"].blazewicz.startswith("Q16|")
        assert BENCHMARK_INSTANCES["u_i_hihi.0"].blazewicz.startswith("R16|")
        assert BENCHMARK_INSTANCES["u_s_lolo.0"].blazewicz.startswith("R16|")


class TestLoadBenchmark:
    def test_dimensions(self):
        inst = load_benchmark("u_c_lolo.0")
        assert inst.ntasks == BENCHMARK_NTASKS == 512
        assert inst.nmachines == BENCHMARK_NMACHINES == 16

    def test_pinned_pj_range(self):
        info = BENCHMARK_INSTANCES["u_i_lohi.0"]
        inst = load_benchmark("u_i_lohi.0")
        assert inst.pj_min == pytest.approx(info.pj_min, rel=1e-9)
        assert inst.pj_max == pytest.approx(info.pj_max, rel=1e-9)

    def test_consistency_class_matches_name(self):
        assert load_benchmark("u_c_hilo.0").consistency() is Consistency.CONSISTENT
        assert load_benchmark("u_i_hilo.0").consistency() is Consistency.INCONSISTENT
        got = load_benchmark("u_s_hilo.0").consistency()
        assert got in (Consistency.SEMI_CONSISTENT, Consistency.CONSISTENT)

    def test_deterministic_across_calls(self):
        load_benchmark.cache_clear()
        a = load_benchmark("u_c_hihi.0").etc.copy()
        load_benchmark.cache_clear()
        b = load_benchmark("u_c_hihi.0").etc
        assert np.array_equal(a, b)

    def test_cached_identity(self):
        assert load_benchmark("u_c_hihi.0") is load_benchmark("u_c_hihi.0")

    def test_distinct_instances_differ(self):
        a = load_benchmark("u_i_hihi.0")
        b = load_benchmark("u_i_lohi.0")
        assert not np.array_equal(a.etc, b.etc)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("u_x_nono.9")

    def test_name_attached(self):
        assert load_benchmark("u_s_lohi.0").name == "u_s_lohi.0"

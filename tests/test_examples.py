"""Smoke tests for the example scripts.

Each example is importable without side effects (work happens in
``main()`` behind a ``__main__`` guard) and exposes a callable
``main``.  Full executions are exercised manually / in benchmarks —
they run seconds to minutes by design.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "parameter_sweep_campaign",
        "compare_algorithms",
        "tune_operators",
        "scaling_study",
        "dynamic_grid",
        "selection_pressure",
    } <= names
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    module = _load(path)
    assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"


def test_campaign_builder_is_reusable():
    module = _load(EXAMPLES_DIR / "parameter_sweep_campaign.py")
    campaign = module.build_campaign(seed=1)
    assert campaign.ntasks == 240
    assert campaign.nmachines == 12
    assert campaign.ready_times.max() > 0


def test_dynamic_timeline_builder():
    module = _load(EXAMPLES_DIR / "dynamic_grid.py")
    events = module.build_timeline(seed=1)
    assert len(events) == 7
    assert events == sorted(events, key=lambda e: e.time)

"""Tests for engine checkpoint / resume."""

import numpy as np
import pytest

from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.cga.checkpoint import (
    engine_state,
    load_checkpoint,
    restore_engine,
    save_checkpoint,
)


CFG = CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=2, seed_with_minmin=False)


class TestExactResume:
    def test_split_run_equals_straight_run(self, small_instance):
        straight = AsyncCGA(small_instance, CFG, rng=5)
        res_straight = straight.run(StopCondition(max_generations=10))

        first = AsyncCGA(small_instance, CFG, rng=5)
        first.run(StopCondition(max_generations=5))
        state = engine_state(first)

        resumed = AsyncCGA(small_instance, CFG, rng=999)  # wrong seed on purpose
        restore_engine(resumed, state)
        res_resumed = resumed.run(StopCondition(max_generations=5))

        assert res_resumed.best_fitness == res_straight.best_fitness
        assert np.array_equal(res_resumed.best_assignment, res_straight.best_assignment)
        assert np.array_equal(resumed.pop.s, straight.pop.s)

    def test_file_roundtrip(self, small_instance, tmp_path):
        eng = AsyncCGA(small_instance, CFG, rng=1)
        eng.run(StopCondition(max_generations=3))
        path = tmp_path / "ckpt" / "state.json"
        save_checkpoint(eng, path)

        other = AsyncCGA(small_instance, CFG, rng=2)
        load_checkpoint(other, path)
        assert np.array_equal(other.pop.s, eng.pop.s)
        assert other.rng.random() == eng.rng.random()


class TestValidation:
    def test_rejects_config_mismatch(self, small_instance):
        eng = AsyncCGA(small_instance, CFG, rng=1)
        state = engine_state(eng)
        other = AsyncCGA(small_instance, CFG.with_(ls_iterations=9), rng=1)
        with pytest.raises(ValueError, match="configuration"):
            restore_engine(other, state)

    def test_rejects_instance_mismatch(self, small_instance, tiny_instance):
        # same grid shapes, different instance names
        eng = AsyncCGA(small_instance, CFG, rng=1)
        state = engine_state(eng)
        other = AsyncCGA(tiny_instance, CFG, rng=1)
        with pytest.raises(ValueError, match="instance"):
            restore_engine(other, state)

    def test_rejects_unknown_version(self, small_instance):
        eng = AsyncCGA(small_instance, CFG, rng=1)
        state = engine_state(eng)
        state["format_version"] = 42
        with pytest.raises(ValueError, match="version"):
            restore_engine(eng, state)

    def test_population_intact_after_failed_restore(self, small_instance, tiny_instance):
        eng = AsyncCGA(small_instance, CFG, rng=1)
        state = engine_state(eng)
        other = AsyncCGA(tiny_instance, CFG, rng=1)
        before = other.pop.s.copy()
        with pytest.raises(ValueError):
            restore_engine(other, state)
        assert np.array_equal(other.pop.s, before)


class TestStateContents:
    def test_json_serializable(self, small_instance):
        import json

        eng = AsyncCGA(small_instance, CFG, rng=1)
        state = engine_state(eng)
        text = json.dumps(state)
        assert "rng_streams" in text
        assert state["format_version"] == 3
        assert state["engine"] == "async"
        assert state["problem"] == "independent"
        # the config is a real dict, not a repr string
        assert state["config"]["ls_iterations"] == CFG.ls_iterations

    def test_v1_checkpoint_still_loads(self, small_instance):
        # hand-build a format-1 state (what the old module wrote)
        eng = AsyncCGA(small_instance, CFG, rng=7)
        eng.run(StopCondition(max_generations=3))
        v1 = {
            "format_version": 1,
            "config": repr(eng.config),
            "instance": eng.instance.name,
            "s": eng.pop.s.tolist(),
            "ct": eng.pop.ct.tolist(),
            "fitness": eng.pop.fitness.tolist(),
            "rng_state": eng.rng.bit_generator.state,
        }
        other = AsyncCGA(small_instance, CFG, rng=0)
        restore_engine(other, v1)
        assert np.array_equal(other.pop.s, eng.pop.s)
        assert other.rng.random() == eng.rng.random()

    def test_v1_rejects_config_mismatch(self, small_instance):
        eng = AsyncCGA(small_instance, CFG, rng=7)
        v1 = {
            "format_version": 1,
            "config": repr(eng.config),
            "instance": eng.instance.name,
            "s": eng.pop.s.tolist(),
            "ct": eng.pop.ct.tolist(),
            "fitness": eng.pop.fitness.tolist(),
            "rng_state": eng.rng.bit_generator.state,
        }
        other = AsyncCGA(small_instance, CFG.with_(ls_iterations=9), rng=7)
        with pytest.raises(ValueError, match="configuration"):
            restore_engine(other, v1)

    def test_restored_invariants(self, small_instance, tmp_path):
        eng = AsyncCGA(small_instance, CFG, rng=1)
        eng.run(StopCondition(max_generations=4))
        save_checkpoint(eng, tmp_path / "c.json")
        fresh = AsyncCGA(small_instance, CFG, rng=0)
        load_checkpoint(fresh, tmp_path / "c.json")
        fresh.pop.check_invariants()

"""Property-based tests for the variation operators.

Every operator must preserve the representation invariants for *any*
parents, any seed, any instance shape — exactly the guarantee the
PA-CGA engines rely on when they skip re-evaluation.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cga.crossover import CROSSOVERS, child_with_ct
from repro.cga.local_search import h2ll
from repro.cga.mutation import MUTATIONS
from repro.etc import make_instance
from repro.scheduling.schedule import compute_completion_times
from repro.scheduling.validation import check_completion_times, validate_assignment


@st.composite
def instance_and_parents(draw):
    ntasks = draw(st.integers(2, 40))
    nmachines = draw(st.integers(2, 8))
    seed = draw(st.integers(0, 10**6))
    inst = make_instance(ntasks, nmachines, consistency="i", seed=seed)
    p1 = draw(
        st.lists(st.integers(0, nmachines - 1), min_size=ntasks, max_size=ntasks)
    )
    p2 = draw(
        st.lists(st.integers(0, nmachines - 1), min_size=ntasks, max_size=ntasks)
    )
    rng_seed = draw(st.integers(0, 10**6))
    return inst, np.array(p1, np.int32), np.array(p2, np.int32), rng_seed


@given(instance_and_parents(), st.sampled_from(sorted(CROSSOVERS)))
@settings(max_examples=80, deadline=None)
def test_crossover_child_ct_always_exact(data, op_name):
    inst, p1, p2, rng_seed = data
    rng = np.random.default_rng(rng_seed)
    p1_ct = compute_completion_times(inst, p1)
    child, ct = child_with_ct(inst, p1, p1_ct, p2, CROSSOVERS[op_name], rng)
    validate_assignment(inst, child)
    check_completion_times(inst, child, ct)


@given(instance_and_parents(), st.sampled_from(sorted(CROSSOVERS)))
@settings(max_examples=60, deadline=None)
def test_crossover_genes_come_from_parents(data, op_name):
    inst, p1, p2, rng_seed = data
    rng = np.random.default_rng(rng_seed)
    p1_ct = compute_completion_times(inst, p1)
    child, _ = child_with_ct(inst, p1, p1_ct, p2, CROSSOVERS[op_name], rng)
    assert np.all((child == p1) | (child == p2))


@given(instance_and_parents(), st.sampled_from(sorted(MUTATIONS)))
@settings(max_examples=80, deadline=None)
def test_mutation_preserves_invariants(data, op_name):
    inst, p1, _, rng_seed = data
    rng = np.random.default_rng(rng_seed)
    s = p1.copy()
    ct = compute_completion_times(inst, s)
    for _ in range(5):
        MUTATIONS[op_name](s, ct, inst, rng)
    validate_assignment(inst, s)
    check_completion_times(inst, s, ct)


@given(instance_and_parents(), st.integers(0, 12))
@settings(max_examples=80, deadline=None)
def test_h2ll_invariants_and_monotonicity(data, iters):
    inst, p1, _, rng_seed = data
    rng = np.random.default_rng(rng_seed)
    s = p1.copy()
    ct = compute_completion_times(inst, s)
    before = ct.max()
    h2ll(s, ct, inst, rng, iters)
    validate_assignment(inst, s)
    check_completion_times(inst, s, ct)
    assert ct.max() <= before + 1e-9


@given(instance_and_parents())
@settings(max_examples=40, deadline=None)
def test_h2ll_fixpoint_when_single_task_per_machine_optimal(data):
    # degenerate guard: when the most loaded machine hosts no task
    # (possible only via ready times), H2LL must be a no-op
    inst, p1, _, rng_seed = data
    from repro.etc.model import ETCMatrix

    ready = np.zeros(inst.nmachines)
    ready[0] = float(inst.etc.sum())  # machine 0 busy forever, no tasks
    heavy = ETCMatrix(inst.etc, ready_times=ready)
    s = np.full(inst.ntasks, 1 % inst.nmachines, dtype=np.int32)
    ct = compute_completion_times(heavy, s)
    if int(ct.argmax()) == 0:
        moves = h2ll(s, ct, heavy, np.random.default_rng(rng_seed), 5)
        assert moves == 0

"""Tests for mutation operators."""

import numpy as np
import pytest

from repro.cga.mutation import MUTATIONS, move_mutation, rebalance_mutation, swap_mutation
from repro.scheduling.schedule import compute_completion_times
from repro.scheduling.validation import check_completion_times, validate_assignment


@pytest.fixture
def state(tiny_instance, rng):
    s = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks).astype(np.int32)
    ct = compute_completion_times(tiny_instance, s)
    return s, ct


@pytest.mark.parametrize("name,op", list(MUTATIONS.items()))
class TestAllMutations:
    def test_keeps_ct_exact(self, name, op, tiny_instance, state, rng):
        s, ct = state
        for _ in range(50):
            op(s, ct, tiny_instance, rng)
        check_completion_times(tiny_instance, s, ct)

    def test_keeps_assignment_valid(self, name, op, tiny_instance, state, rng):
        s, ct = state
        for _ in range(50):
            op(s, ct, tiny_instance, rng)
        validate_assignment(tiny_instance, s)

    def test_changes_at_most_two_genes(self, name, op, tiny_instance, state, rng):
        s, ct = state
        before = s.copy()
        op(s, ct, tiny_instance, rng)
        assert int((s != before).sum()) <= 2


class TestMoveMutation:
    def test_moves_exactly_one_task_or_none(self, tiny_instance, state, rng):
        s, ct = state
        before = s.copy()
        move_mutation(s, ct, tiny_instance, rng)
        assert int((s != before).sum()) in (0, 1)

    def test_eventually_changes_something(self, tiny_instance, state, rng):
        s, ct = state
        before = s.copy()
        for _ in range(20):
            move_mutation(s, ct, tiny_instance, rng)
        assert not np.array_equal(s, before)


class TestSwapMutation:
    def test_preserves_machine_multiset(self, tiny_instance, state, rng):
        s, ct = state
        before = np.sort(s.copy())
        for _ in range(30):
            swap_mutation(s, ct, tiny_instance, rng)
        assert np.array_equal(np.sort(s), before)

    def test_single_task_noop(self, rng):
        from repro.etc import make_instance

        inst = make_instance(1, 3, seed=0)
        s = np.array([0], dtype=np.int32)
        ct = compute_completion_times(inst, s)
        swap_mutation(s, ct, inst, rng)
        assert s[0] == 0


class TestRebalanceMutation:
    def test_moves_off_most_loaded(self, tiny_instance, state, rng):
        s, ct = state
        moved = 0
        for _ in range(30):
            w = int(ct.argmax())
            n_before = int((s == w).sum())
            rebalance_mutation(s, ct, tiny_instance, rng)
            if int((s == w).sum()) < n_before:
                moved += 1
        assert moved > 0
        check_completion_times(tiny_instance, s, ct)

    def test_noop_when_worst_machine_empty(self, rng):
        from repro.etc.model import ETCMatrix

        # machine 1 has huge ready time but no tasks
        inst = ETCMatrix(
            np.ones((3, 2)), ready_times=np.array([0.0, 100.0])
        )
        s = np.zeros(3, dtype=np.int32)
        ct = compute_completion_times(inst, s)
        before = s.copy()
        rebalance_mutation(s, ct, inst, rng)
        assert np.array_equal(s, before)

"""Tests for the tracked-contention simulation mode."""

import numpy as np
import pytest

from repro.cga import CGAConfig, StopCondition
from repro.parallel import CostModel, SimulatedPACGA


CFG = CGAConfig(grid_rows=6, grid_cols=6, ls_iterations=2, seed_with_minmin=False)


class TestConstruction:
    def test_mode_validation(self, tiny_instance):
        with pytest.raises(ValueError, match="contention"):
            SimulatedPACGA(tiny_instance, CFG, contention="optimistic")

    def test_default_is_meanfield(self, tiny_instance):
        sim = SimulatedPACGA(tiny_instance, CFG)
        assert sim.contention == "meanfield"

    def test_model_validates_new_fields(self):
        with pytest.raises(ValueError):
            CostModel(t_cacheline=-1.0)
        with pytest.raises(ValueError):
            CostModel(t_write_hold=-0.1)


class TestTrackedSemantics:
    def test_deterministic(self, tiny_instance):
        def once():
            sim = SimulatedPACGA(
                tiny_instance, CFG.with_(n_threads=3), seed=4, contention="tracked"
            )
            return sim.run(StopCondition(virtual_time=0.003))

        a, b = once(), once()
        assert a.best_fitness == b.best_fitness
        assert a.evaluations == b.evaluations
        assert a.extra["conflict_wait_s"] == b.extra["conflict_wait_s"]

    def test_extra_reports_conflicts(self, tiny_instance):
        sim = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=2), seed=0, contention="tracked"
        )
        res = sim.run(StopCondition(max_generations=3))
        assert res.extra["contention"] == "tracked"
        assert res.extra["lock_conflicts"] >= 0
        assert res.extra["conflict_wait_s"] >= 0.0

    def test_single_thread_tracked_equals_meanfield_genetics(self, tiny_instance):
        # with one thread there is no cross traffic: both modes must
        # produce the same search trajectory
        a = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=1), seed=2, contention="tracked"
        ).run(StopCondition(max_generations=3))
        b = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=1), seed=2, contention="meanfield"
        ).run(StopCondition(max_generations=3))
        assert a.best_fitness == b.best_fitness
        assert np.array_equal(a.best_assignment, b.best_assignment)

    def test_population_invariants(self, tiny_instance):
        sim = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=4), seed=1, contention="tracked"
        )
        sim.run(StopCondition(virtual_time=0.005))
        sim.pop.check_invariants()

    def test_genetics_identical_across_modes(self, small_instance):
        # contention only changes virtual timing; at equal generation
        # counts the same seeds must visit the same populations
        a = SimulatedPACGA(
            small_instance, CFG.with_(n_threads=3), seed=5, contention="tracked"
        ).run(StopCondition(max_generations=3))
        b = SimulatedPACGA(
            small_instance, CFG.with_(n_threads=3), seed=5, contention="meanfield"
        ).run(StopCondition(max_generations=3))
        assert a.best_fitness == b.best_fitness


class TestTrackedTiming:
    def test_cross_traffic_slows_threads(self, small_instance):
        # same evaluation count: tracked multi-thread clocks must exceed
        # a zero-cacheline variant's clocks
        expensive = SimulatedPACGA(
            small_instance, CFG.with_(n_threads=4), seed=0, contention="tracked"
        ).run(StopCondition(max_generations=3))
        cheap_model = CostModel(t_cacheline=0.0, jitter_sigma=0.0)
        cheap = SimulatedPACGA(
            small_instance,
            CFG.with_(n_threads=4),
            seed=0,
            contention="tracked",
            cost_model=cheap_model,
        ).run(StopCondition(max_generations=3))
        assert max(expensive.extra["per_thread_clocks"]) > max(
            cheap.extra["per_thread_clocks"]
        )

    def test_forced_conflicts_detected(self, tiny_instance):
        # absurdly long write holds force queuing to become visible
        sticky = CostModel(t_write_hold=500.0, t_read_hold=200.0, jitter_sigma=0.0)
        sim = SimulatedPACGA(
            tiny_instance,
            CFG.with_(n_threads=4),
            seed=0,
            contention="tracked",
            cost_model=sticky,
        )
        res = sim.run(StopCondition(max_generations=4))
        assert res.extra["lock_conflicts"] > 0
        assert res.extra["conflict_wait_s"] > 0.0

"""Tests for the tracked-contention simulation mode and the tracked
lock classes that give real engines the same wait/hold accounting."""

import threading

import numpy as np
import pytest

from repro.cga import CGAConfig, StopCondition
from repro.obs import MetricRecorder
from repro.parallel import (
    CostModel,
    LockManager,
    SimulatedPACGA,
    TrackedLockManager,
    TrackedRWLock,
)


CFG = CGAConfig(grid_rows=6, grid_cols=6, ls_iterations=2, seed_with_minmin=False)


class TestConstruction:
    def test_mode_validation(self, tiny_instance):
        with pytest.raises(ValueError, match="contention"):
            SimulatedPACGA(tiny_instance, CFG, contention="optimistic")

    def test_default_is_meanfield(self, tiny_instance):
        sim = SimulatedPACGA(tiny_instance, CFG)
        assert sim.contention == "meanfield"

    def test_model_validates_new_fields(self):
        with pytest.raises(ValueError):
            CostModel(t_cacheline=-1.0)
        with pytest.raises(ValueError):
            CostModel(t_write_hold=-0.1)


class TestTrackedSemantics:
    def test_deterministic(self, tiny_instance):
        def once():
            sim = SimulatedPACGA(
                tiny_instance, CFG.with_(n_threads=3), seed=4, contention="tracked"
            )
            return sim.run(StopCondition(virtual_time=0.003))

        a, b = once(), once()
        assert a.best_fitness == b.best_fitness
        assert a.evaluations == b.evaluations
        assert a.extra["conflict_wait_s"] == b.extra["conflict_wait_s"]

    def test_extra_reports_conflicts(self, tiny_instance):
        sim = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=2), seed=0, contention="tracked"
        )
        res = sim.run(StopCondition(max_generations=3))
        assert res.extra["contention"] == "tracked"
        assert res.extra["lock_conflicts"] >= 0
        assert res.extra["conflict_wait_s"] >= 0.0

    def test_single_thread_tracked_equals_meanfield_genetics(self, tiny_instance):
        # with one thread there is no cross traffic: both modes must
        # produce the same search trajectory
        a = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=1), seed=2, contention="tracked"
        ).run(StopCondition(max_generations=3))
        b = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=1), seed=2, contention="meanfield"
        ).run(StopCondition(max_generations=3))
        assert a.best_fitness == b.best_fitness
        assert np.array_equal(a.best_assignment, b.best_assignment)

    def test_population_invariants(self, tiny_instance):
        sim = SimulatedPACGA(
            tiny_instance, CFG.with_(n_threads=4), seed=1, contention="tracked"
        )
        sim.run(StopCondition(virtual_time=0.005))
        sim.pop.check_invariants()

    def test_genetics_identical_across_modes(self, small_instance):
        # contention only changes virtual timing; at equal generation
        # counts the same seeds must visit the same populations
        a = SimulatedPACGA(
            small_instance, CFG.with_(n_threads=3), seed=5, contention="tracked"
        ).run(StopCondition(max_generations=3))
        b = SimulatedPACGA(
            small_instance, CFG.with_(n_threads=3), seed=5, contention="meanfield"
        ).run(StopCondition(max_generations=3))
        assert a.best_fitness == b.best_fitness


class TestTrackedRWLock:
    def test_read_and_write_recorded(self):
        rec = MetricRecorder("t")
        lock = TrackedRWLock(rec)
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        c = rec.counters
        assert c["lock.read_acquires"] == 1
        assert c["lock.write_acquires"] == 1
        for kind in ("read", "write"):
            assert c[f"lock.{kind}_wait_s_total"] >= 0.0
            assert c[f"lock.{kind}_hold_s_total"] >= 0.0
            assert rec.histograms[f"lock.{kind}_wait_us"].count == 1

    def test_still_a_correct_rwlock(self):
        # mutual exclusion must survive the timing decoration
        lock = TrackedRWLock(MetricRecorder("t"))
        state = {"writers": 0, "max_writers": 0}

        def writer():
            for _ in range(50):
                with lock.write_locked():
                    state["writers"] += 1
                    state["max_writers"] = max(state["max_writers"], state["writers"])
                    state["writers"] -= 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert state["max_writers"] == 1
        assert lock.recorder.counters["lock.write_acquires"] == 200

    def test_wait_time_measured_under_contention(self):
        rec_a, rec_b = MetricRecorder("a"), MetricRecorder("b")
        lock = TrackedRWLock(rec_a)
        started = threading.Event()

        def holder():
            with lock.write_locked():
                started.set()
                import time

                time.sleep(0.05)

        t = threading.Thread(target=holder)
        t.start()
        started.wait()
        lock.recorder = rec_b
        with lock.write_locked():
            pass
        t.join()
        # the second writer demonstrably waited on the first
        assert rec_b.counters["lock.write_wait_s_total"] >= 0.02


class TestTrackedLockManager:
    def test_unbound_threads_pass_through(self):
        mgr = TrackedLockManager(LockManager(4))
        with mgr.read(0):
            pass
        with mgr.write(1):
            pass
        assert len(mgr) == 4  # no recorder -> nothing to assert but no crash

    def test_bound_thread_records(self):
        mgr = TrackedLockManager(LockManager(4))
        rec = MetricRecorder("0")
        mgr.bind(rec)
        with mgr.read(2):
            pass
        with mgr.write(2):
            pass
        # wait histograms fill immediately; counter totals land on flush
        assert rec.histograms["lock.read_wait_us"].count == 1
        assert rec.histograms["lock.write_wait_us"].count == 1
        mgr.flush()
        assert rec.counters["lock.read_acquires"] == 1
        assert rec.counters["lock.write_acquires"] == 1
        assert rec.counters["lock.read_wait_s_total"] >= 0.0
        assert rec.counters["lock.write_hold_s_total"] >= 0.0

    def test_recording_routes_to_acquiring_thread(self):
        # two threads, two private recorders: counts must not mix
        mgr = TrackedLockManager(LockManager(2))
        recs = {0: MetricRecorder("0"), 1: MetricRecorder("1")}

        def work(tid: int, n: int) -> None:
            mgr.bind(recs[tid])
            for _ in range(n):
                with mgr.write(tid):
                    pass
            mgr.flush()  # totals buffer thread-locally until flushed

        threads = [
            threading.Thread(target=work, args=(0, 3)),
            threading.Thread(target=work, args=(1, 7)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recs[0].counters["lock.write_acquires"] == 3
        assert recs[1].counters["lock.write_acquires"] == 7


class TestTrackedTiming:
    def test_cross_traffic_slows_threads(self, small_instance):
        # same evaluation count: tracked multi-thread clocks must exceed
        # a zero-cacheline variant's clocks
        expensive = SimulatedPACGA(
            small_instance, CFG.with_(n_threads=4), seed=0, contention="tracked"
        ).run(StopCondition(max_generations=3))
        cheap_model = CostModel(t_cacheline=0.0, jitter_sigma=0.0)
        cheap = SimulatedPACGA(
            small_instance,
            CFG.with_(n_threads=4),
            seed=0,
            contention="tracked",
            cost_model=cheap_model,
        ).run(StopCondition(max_generations=3))
        assert max(expensive.extra["per_thread_clocks"]) > max(
            cheap.extra["per_thread_clocks"]
        )

    def test_forced_conflicts_detected(self, tiny_instance):
        # absurdly long write holds force queuing to become visible
        sticky = CostModel(t_write_hold=500.0, t_read_hold=200.0, jitter_sigma=0.0)
        sim = SimulatedPACGA(
            tiny_instance,
            CFG.with_(n_threads=4),
            seed=0,
            contention="tracked",
            cost_model=sticky,
        )
        res = sim.run(StopCondition(max_generations=4))
        assert res.extra["lock_conflicts"] > 0
        assert res.extra["conflict_wait_s"] > 0.0

"""Tests for the sweep policies (§3.2's update-order experiment)."""

import numpy as np
import pytest

from repro.cga import CGAConfig, StopCondition
from repro.cga.sweep import SWEEP_POLICIES, sweep_order
from repro.parallel import SimulatedPACGA


class TestSweepOrder:
    def test_line_is_identity(self):
        block = np.arange(5, 15)
        assert np.array_equal(sweep_order(block, "line"), block)

    def test_reverse(self):
        block = np.arange(4)
        assert sweep_order(block, "reverse").tolist() == [3, 2, 1, 0]

    def test_shuffle_is_permutation(self):
        block = np.arange(20, 60)
        out = sweep_order(block, "shuffle", block_id=2)
        assert sorted(out.tolist()) == block.tolist()

    def test_shuffle_fixed_per_block(self):
        block = np.arange(30)
        a = sweep_order(block, "shuffle", block_id=1)
        b = sweep_order(block, "shuffle", block_id=1)
        assert np.array_equal(a, b)

    def test_shuffle_differs_between_blocks(self):
        block = np.arange(30)
        a = sweep_order(block, "shuffle", block_id=0)
        b = sweep_order(block, "shuffle", block_id=1)
        assert not np.array_equal(a, b)

    def test_returns_copy(self):
        block = np.arange(6)
        out = sweep_order(block, "line")
        out[0] = 99
        assert block[0] == 0

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown sweep"):
            sweep_order(np.arange(3), "zigzag")


class TestSweepInConfig:
    def test_default_is_line(self):
        assert CGAConfig().sweep == "line"

    def test_validation(self):
        with pytest.raises(ValueError, match="sweep"):
            CGAConfig(sweep="diagonal")

    def test_describe_mentions_policy(self):
        assert "shuffle sweep" in CGAConfig(sweep="shuffle").describe()

    @pytest.mark.parametrize("policy", SWEEP_POLICIES)
    def test_engines_run_under_every_policy(self, tiny_instance, policy):
        config = CGAConfig(
            grid_rows=4, grid_cols=4, n_threads=2, ls_iterations=1,
            seed_with_minmin=False, sweep=policy,
        )
        sim = SimulatedPACGA(tiny_instance, config, seed=0)
        res = sim.run(StopCondition(max_generations=3))
        sim.pop.check_invariants()
        assert res.evaluations >= 3 * 16

    def test_policies_change_outcomes(self, small_instance):
        def best(policy):
            config = CGAConfig(
                grid_rows=6, grid_cols=6, n_threads=2, ls_iterations=1,
                seed_with_minmin=False, sweep=policy,
            )
            return SimulatedPACGA(small_instance, config, seed=3).run(
                StopCondition(max_generations=5)
            ).best_fitness

        results = {p: best(p) for p in SWEEP_POLICIES}
        assert len(set(results.values())) > 1  # order matters to trajectories

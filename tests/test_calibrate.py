"""Tests for the cost-model calibration tool."""

import pytest

from repro.parallel import XEON_E5440, measure_cost_model, time_breeding_step


class TestTimeBreedingStep:
    def test_positive(self, small_instance):
        t = time_breeding_step(small_instance, ls_iterations=0, samples=200)
        assert t > 0

    def test_ls_increases_cost(self, small_instance):
        t0 = time_breeding_step(small_instance, 0, samples=300)
        t10 = time_breeding_step(small_instance, 10, samples=300)
        assert t10 > t0

    def test_locks_increase_cost(self, small_instance):
        free = time_breeding_step(small_instance, 0, samples=300, locks=False)
        locked = time_breeding_step(small_instance, 0, samples=300, locks=True)
        assert locked > free

    def test_rejects_zero_samples(self, small_instance):
        with pytest.raises(ValueError):
            time_breeding_step(small_instance, 0, samples=0)


class TestMeasureCostModel:
    def test_produces_valid_model(self, small_instance):
        model = measure_cost_model(small_instance, samples=300)
        assert model.t_breed > 0
        assert model.t_ls_iter >= 0
        assert model.t_lock >= 0

    def test_inherits_contention_terms(self, small_instance):
        model = measure_cost_model(small_instance, samples=200)
        assert model.t_boundary == XEON_E5440.t_boundary
        assert model.cache_alpha == XEON_E5440.cache_alpha
        assert model.jitter_sigma == XEON_E5440.jitter_sigma

    def test_model_usable_by_simulator(self, tiny_instance, small_instance):
        from repro.cga import CGAConfig, StopCondition
        from repro.parallel import SimulatedPACGA

        model = measure_cost_model(small_instance, samples=200)
        sim = SimulatedPACGA(
            tiny_instance,
            CGAConfig(grid_rows=4, grid_cols=4, n_threads=2, ls_iterations=1,
                      seed_with_minmin=False),
            seed=0,
            cost_model=model,
        )
        res = sim.run(StopCondition(max_generations=2))
        assert res.evaluations > 0

"""Tests for repro.obs.trace — Chrome trace_event JSON export."""

import json

from repro.obs import ThreadTracer, Tracer


class TestThreadTracer:
    def test_complete_event_schema(self):
        tt = ThreadTracer(3, epoch=0.0)
        tt.complete("sweep", 0.5, 0.25, {"generation": 2})
        (ev,) = tt.events
        assert ev["ph"] == "X"
        assert ev["name"] == "sweep"
        assert ev["tid"] == 3 and ev["pid"] == 1
        assert ev["ts"] == 0.5e6 and ev["dur"] == 0.25e6  # microseconds
        assert ev["args"] == {"generation": 2}

    def test_span_context_manager(self):
        tt = ThreadTracer(0, epoch=0.0)
        with tt.span("work"):
            pass
        (ev,) = tt.events
        assert ev["ph"] == "X" and ev["name"] == "work"
        assert ev["dur"] >= 0.0

    def test_instant_and_counter(self):
        tt = ThreadTracer(1, epoch=0.0)
        tt.instant("improvement", {"best": 1.0}, at_s=0.1)
        tt.counter("evals", {"n": 5.0}, at_s=0.2)
        inst, ctr = tt.events
        assert inst["ph"] == "i" and inst["s"] == "t" and inst["ts"] == 0.1e6
        assert ctr["ph"] == "C" and ctr["args"] == {"n": 5.0}


class TestTracer:
    def test_thread_lanes_are_cached(self):
        tr = Tracer(epoch=0.0)
        assert tr.thread(0) is tr.thread(0)
        assert tr.thread(0) is not tr.thread(1)

    def test_export_schema(self):
        tr = Tracer(epoch=0.0)
        tr.thread(1, "pacga-1").complete("sweep", 0.0, 0.1)
        tr.thread(0, "pacga-0").complete("sweep", 0.0, 0.2)
        doc = tr.export()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        # thread_name metadata records come first, sorted by tid
        metas = [e for e in events if e["ph"] == "M"]
        assert [m["tid"] for m in metas] == [0, 1]
        assert metas[0]["args"]["name"] == "pacga-0"
        assert all(e["ph"] in ("M", "X") for e in events)
        # the whole document must be valid JSON
        json.loads(json.dumps(doc))

    def test_adopt_merges_foreign_events(self):
        tr = Tracer(epoch=0.0)
        foreign = ThreadTracer(5, epoch=0.0)
        foreign.complete("sweep", 0.0, 0.1)
        foreign.instant("done")
        tr.adopt(5, foreign.events, "forked-5")
        assert tr.n_events == 2
        names = {
            e["args"]["name"] for e in tr.export()["traceEvents"] if e["ph"] == "M"
        }
        assert names == {"forked-5"}

    def test_write_is_loadable(self, tmp_path):
        tr = Tracer(epoch=0.0)
        tr.thread(0).complete("sweep", 0.0, 1e-3, {"generation": 1})
        path = tmp_path / "trace.json"
        tr.write(path)
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

"""Tests for cellular neighborhoods."""

import numpy as np
import pytest

from repro.cga import Grid2D, NEIGHBORHOODS, neighbor_table
from repro.cga.neighborhood import neighbor_offsets


class TestOffsets:
    def test_l5_is_von_neumann(self):
        offs = set(neighbor_offsets("l5"))
        assert offs == {(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)}

    def test_sizes(self):
        assert len(neighbor_offsets("l5")) == 5
        assert len(neighbor_offsets("c9")) == 9
        assert len(neighbor_offsets("l9")) == 9
        assert len(neighbor_offsets("c13")) == 13

    def test_self_first_everywhere(self):
        for name in NEIGHBORHOODS:
            assert neighbor_offsets(name)[0] == (0, 0)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown neighborhood"):
            neighbor_offsets("l7")

    def test_offsets_are_copies(self):
        a = neighbor_offsets("l5")
        a.append((9, 9))
        assert len(neighbor_offsets("l5")) == 5


class TestNeighborTable:
    def test_shape(self):
        g = Grid2D(6, 6)
        tbl = neighbor_table(g, "l5")
        assert tbl.shape == (36, 5)

    def test_self_column(self):
        g = Grid2D(6, 6)
        tbl = neighbor_table(g, "c9")
        assert np.array_equal(tbl[:, 0], np.arange(36))

    def test_manhattan_distances_match_shape(self):
        g = Grid2D(8, 8)
        tbl = neighbor_table(g, "l5")
        for i in range(g.size):
            for j in tbl[i, 1:]:
                assert g.manhattan(i, int(j)) == 1

    def test_l9_reaches_distance_two(self):
        g = Grid2D(8, 8)
        tbl = neighbor_table(g, "l9")
        dists = {g.manhattan(0, int(j)) for j in tbl[0, 1:]}
        assert dists == {1, 2}

    def test_symmetry_of_l5(self):
        # i in N(j) iff j in N(i) for symmetric shapes
        g = Grid2D(5, 5)
        tbl = neighbor_table(g, "l5")
        sets = [set(map(int, row)) for row in tbl]
        for i in range(g.size):
            for j in sets[i]:
                assert i in sets[j]

    def test_toroidal_wrap_on_edges(self):
        g = Grid2D(4, 4)
        tbl = neighbor_table(g, "l5")
        # cell 0's up neighbor is in the last row, left neighbor at col 3
        assert 12 in tbl[0]
        assert 3 in tbl[0]

    def test_all_indices_in_range(self):
        g = Grid2D(7, 3)
        for name in NEIGHBORHOODS:
            tbl = neighbor_table(g, name)
            assert tbl.min() >= 0
            assert tbl.max() < g.size

    def test_distinct_neighbors_on_big_grid(self):
        g = Grid2D(16, 16)
        tbl = neighbor_table(g, "c13")
        for i in (0, 100, 255):
            assert len(set(map(int, tbl[i]))) == 13

"""Public-API surface tests: exports, versioning, docstrings."""

import importlib

import pytest

import repro


PACKAGES = [
    "repro",
    "repro.etc",
    "repro.scheduling",
    "repro.heuristics",
    "repro.cga",
    "repro.parallel",
    "repro.baselines",
    "repro.dynamic",
    "repro.experiments",
    "repro.util",
]


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_top_level_all_is_importable_star_set(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestPublicDocstrings:
    def test_key_classes_documented(self):
        from repro import (
            AsyncCGA,
            CGAConfig,
            ETCMatrix,
            Schedule,
            SimulatedPACGA,
            StopCondition,
        )

        for obj in (AsyncCGA, CGAConfig, ETCMatrix, Schedule, SimulatedPACGA, StopCondition):
            assert obj.__doc__ and len(obj.__doc__.strip()) > 20

    def test_engines_share_run_signature(self):
        from repro import AsyncCGA, ProcessPACGA, SimulatedPACGA, SyncCGA, ThreadedPACGA

        for engine in (AsyncCGA, SyncCGA, ThreadedPACGA, ProcessPACGA, SimulatedPACGA):
            assert callable(getattr(engine, "run"))

    def test_registries_are_nonempty(self):
        from repro.cga.crossover import CROSSOVERS
        from repro.cga.fitness import FITNESS
        from repro.cga.local_search import LOCAL_SEARCHES
        from repro.cga.mutation import MUTATIONS
        from repro.cga.neighborhood import NEIGHBORHOODS
        from repro.cga.replacement import REPLACEMENTS
        from repro.cga.selection import SELECTIONS
        from repro.heuristics import HEURISTICS

        for registry in (
            CROSSOVERS,
            FITNESS,
            LOCAL_SEARCHES,
            MUTATIONS,
            NEIGHBORHOODS,
            REPLACEMENTS,
            SELECTIONS,
            HEURISTICS,
        ):
            assert registry
            for key, value in registry.items():
                assert isinstance(key, str)
                assert callable(value) or isinstance(value, list)

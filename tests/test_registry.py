"""Engine-registry drift checks.

The CLI's ``--engine`` choices, ``repro.cga.SEQUENTIAL_ENGINES``, the
experiments runner and the takeover study must all resolve engines from
:mod:`repro.runtime.registry` — these tests fail if any dispatch site
grows its own list again.
"""

import numpy as np
import pytest

from repro.cga import SEQUENTIAL_ENGINES, CGAConfig, StopCondition
from repro.runtime.registry import (
    ENGINE_SPECS,
    EngineSpec,
    checkpointable_engines,
    create_engine,
    engine_aliases,
    engine_names,
    register_engine,
    resolve_engine,
    sequential_engines,
)


class TestRegistry:
    def test_all_seven_engines_registered(self):
        assert engine_names() == [
            "async",
            "sync",
            "vectorized",
            "sim",
            "threads",
            "shm",
            "processes",
        ]

    def test_aliases_resolve_to_canonical_specs(self):
        aliases = engine_aliases()
        assert aliases == {
            "pacga-sim": "sim",
            "pacga-threads": "threads",
            "pacga-shm": "shm",
            "pacga-processes": "processes",
        }
        for alias, name in aliases.items():
            assert resolve_engine(alias) is ENGINE_SPECS[name]

    def test_unknown_engine_error_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid engines.*async"):
            resolve_engine("island")

    def test_unknown_kwarg_rejected_before_import(self):
        with pytest.raises(TypeError, match="does not accept"):
            ENGINE_SPECS["async"].create(None, None, frobnicate=1)

    def test_alias_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine(
                EngineSpec(name="island", module="x", qualname="Y", aliases=("pacga-sim",))
            )
        assert "island" not in ENGINE_SPECS  # validation precedes mutation

    def test_checkpointable_set(self):
        names = checkpointable_engines()
        assert "processes" not in names
        assert set(names) == {"async", "sync", "vectorized", "sim", "threads", "shm"}


class TestNoDrift:
    def test_cli_choices_are_registry_names_plus_aliases(self):
        from repro.cli.engines import engine_choices

        assert engine_choices() == [*engine_names(), *sorted(engine_aliases())]

    def test_cli_parser_accepts_every_registry_spelling(self):
        from repro.cli import build_parser

        parser = build_parser()
        for name in [*engine_names(), *engine_aliases()]:
            assert parser.parse_args(["solve", "--engine", name]).engine == name

    def test_cli_epilog_lists_every_alias(self):
        from repro.cli.engines import alias_epilog

        text = alias_epilog()
        for alias, name in engine_aliases().items():
            assert f"{alias} = {name}" in text

    def test_sequential_engines_derive_from_registry(self):
        specs = sequential_engines()
        assert SEQUENTIAL_ENGINES == specs
        for name, cls in specs.items():
            assert ENGINE_SPECS[name].parallelism == "sequential"
            assert ENGINE_SPECS[name].load() is cls

    def test_runner_factory_builds_through_registry(self, tiny_instance):
        from repro.experiments.runner import engine_factory

        cfg = CGAConfig(
            grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False
        )
        stop = StopCondition(max_generations=3)
        factory = engine_factory("async", tiny_instance, cfg, stop)
        res = factory(np.random.SeedSequence(3))
        direct = create_engine(
            "async", tiny_instance, cfg, seed=np.random.SeedSequence(3)
        ).run(stop)
        assert res.best_fitness == direct.best_fitness
        assert np.array_equal(res.best_assignment, direct.best_assignment)

    def test_takeover_error_lists_registry_names(self):
        from repro.experiments.takeover import takeover_experiment

        # processes is registered but not checkpointable -> still rejected
        with pytest.raises(ValueError, match="update must be one of.*async"):
            takeover_experiment(update="processes")

    def test_takeover_accepts_alias(self):
        from repro.experiments.takeover import takeover_experiment

        result = takeover_experiment(
            update="pacga-sim", grid_rows=8, grid_cols=8, max_generations=3
        )
        assert result.update == "pacga-sim"
        assert len(result.proportions) >= 2

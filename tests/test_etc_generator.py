"""Tests for the range-based ETC generator."""

import numpy as np
import pytest

from repro.etc import Consistency, ETCGeneratorSpec, generate_etc, rescale_to_range
from repro.etc.generator import MACHINE_HETEROGENEITY_RANGES, TASK_HETEROGENEITY_RANGES


class TestSpec:
    def test_named_ranges(self):
        spec = ETCGeneratorSpec(task_het="hi", machine_het="lo")
        assert spec.task_range() == TASK_HETEROGENEITY_RANGES["hi"]
        assert spec.machine_range() == MACHINE_HETEROGENEITY_RANGES["lo"]

    def test_numeric_ranges(self):
        spec = ETCGeneratorSpec(task_het=500.0, machine_het=50.0)
        assert spec.task_range() == 500.0
        assert spec.machine_range() == 50.0

    def test_bad_label(self):
        with pytest.raises(ValueError, match="task_het"):
            ETCGeneratorSpec(task_het="medium").task_range()

    def test_range_must_exceed_one(self):
        with pytest.raises(ValueError):
            ETCGeneratorSpec(task_het=0.5).task_range()


class TestGenerate:
    def test_shape_and_positivity(self):
        spec = ETCGeneratorSpec(ntasks=20, nmachines=5)
        m = generate_etc(spec, rng=0)
        assert m.etc.shape == (20, 5)
        assert m.pj_min > 0

    def test_deterministic_per_seed(self):
        spec = ETCGeneratorSpec(ntasks=10, nmachines=3)
        a = generate_etc(spec, rng=5)
        b = generate_etc(spec, rng=5)
        assert np.array_equal(a.etc, b.etc)

    def test_seed_sensitivity(self):
        spec = ETCGeneratorSpec(ntasks=10, nmachines=3)
        assert not np.array_equal(generate_etc(spec, rng=1).etc, generate_etc(spec, rng=2).etc)

    def test_consistent_rows_sorted(self):
        spec = ETCGeneratorSpec(ntasks=30, nmachines=6, consistency=Consistency.CONSISTENT)
        m = generate_etc(spec, rng=0)
        assert np.all(np.diff(m.etc, axis=1) >= 0)

    def test_semi_consistent_even_columns_sorted(self):
        spec = ETCGeneratorSpec(ntasks=30, nmachines=6, consistency=Consistency.SEMI_CONSISTENT)
        m = generate_etc(spec, rng=0)
        assert np.all(np.diff(m.etc[:, ::2], axis=1) >= 0)

    def test_inconsistent_not_accidentally_sorted(self):
        spec = ETCGeneratorSpec(ntasks=100, nmachines=8, consistency=Consistency.INCONSISTENT)
        m = generate_etc(spec, rng=0)
        assert not np.all(np.diff(m.etc, axis=1) >= 0)

    def test_value_range_respects_parameters(self):
        spec = ETCGeneratorSpec(ntasks=200, nmachines=8, task_het="hi", machine_het="hi")
        m = generate_etc(spec, rng=0)
        assert m.pj_max <= 3000.0 * 1000.0
        assert m.pj_min >= 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_etc(ETCGeneratorSpec(ntasks=0, nmachines=4), rng=0)

    def test_name_is_attached(self):
        m = generate_etc(ETCGeneratorSpec(ntasks=4, nmachines=2), rng=0, name="foo")
        assert m.name == "foo"


class TestRescale:
    def test_exact_range(self):
        m = generate_etc(ETCGeneratorSpec(ntasks=50, nmachines=4), rng=0)
        out = rescale_to_range(m, 2.0, 1000.0)
        assert out.pj_min == pytest.approx(2.0)
        assert out.pj_max == pytest.approx(1000.0)

    def test_preserves_consistency(self):
        spec = ETCGeneratorSpec(ntasks=50, nmachines=4, consistency=Consistency.CONSISTENT)
        m = generate_etc(spec, rng=0)
        out = rescale_to_range(m, 5.0, 500.0)
        assert out.consistency() is Consistency.CONSISTENT

    def test_monotone_map(self):
        m = generate_etc(ETCGeneratorSpec(ntasks=50, nmachines=4), rng=0)
        out = rescale_to_range(m, 1.0, 10.0)
        orig_order = np.argsort(m.etc.ravel())
        new_order = np.argsort(out.etc.ravel())
        assert np.array_equal(orig_order, new_order)

    def test_invalid_target_range(self):
        m = generate_etc(ETCGeneratorSpec(ntasks=5, nmachines=2), rng=0)
        with pytest.raises(ValueError):
            rescale_to_range(m, 10.0, 2.0)
        with pytest.raises(ValueError):
            rescale_to_range(m, 0.0, 2.0)

    def test_keeps_name_and_ready_times(self):
        m = generate_etc(ETCGeneratorSpec(ntasks=5, nmachines=2), rng=0, name="keep")
        out = rescale_to_range(m, 1.0, 9.0)
        assert out.name == "keep"
        assert np.array_equal(out.ready_times, m.ready_times)

"""Delta evaluation: bit-identical to full recomputation, O(1) peaks.

The acceptance contract for :mod:`repro.scheduling.delta`: after *any*
randomized chain of moves/batch reassignments, ``DeltaSchedule.ct``
equals ``compute_completion_times(instance, s)`` with ``np.array_equal``
— bitwise, not approximately — and every peak query matches the
equivalent ``np.max`` expression exactly.
"""

import numpy as np
import pytest

from repro.scheduling import (
    DeltaSchedule,
    PeakTracker,
    Schedule,
    compute_completion_times,
    sequential_loads,
)


class TestSequentialLoads:
    def test_matches_full_recompute_bitwise(self, tiny_instance, rng):
        s = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks)
        full = compute_completion_times(tiny_instance, s)
        assert np.array_equal(sequential_loads(tiny_instance, s), full)

    def test_machine_subset_aligns_with_argument_order(self, tiny_instance, rng):
        s = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks)
        full = compute_completion_times(tiny_instance, s)
        got = sequential_loads(tiny_instance, s, (3, 0, 2))
        assert np.array_equal(got, full[[3, 0, 2]])

    def test_empty_machine_is_ready_time(self, tiny_instance):
        s = np.zeros(tiny_instance.ntasks, dtype=np.int32)  # all on machine 0
        loads = sequential_loads(tiny_instance, s, (1, 2))
        assert np.array_equal(loads, tiny_instance.ready_times[[1, 2]])


class TestPeakTracker:
    def test_max_is_ct_max(self, tiny_instance, rng):
        ct = compute_completion_times(
            tiny_instance, rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks)
        )
        assert PeakTracker(ct).max() == ct.max()

    def test_max_excluding_matches_np_delete(self, tiny_instance, rng):
        ct = compute_completion_times(
            tiny_instance, rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks)
        )
        peaks = PeakTracker(ct)
        m = tiny_instance.nmachines
        for a in range(m):
            for b in range(m):
                expect = np.delete(ct, list({a, b})).max(initial=0.0)
                assert peaks.max_excluding(a, b) == expect

    def test_notify_tracks_mutations(self, rng):
        ct = rng.random(8) * 100
        peaks = PeakTracker(ct)
        for _ in range(500):
            m = int(rng.integers(0, 8))
            ct[m] = float(rng.random() * 200)
            peaks.notify((m,))
            assert peaks.max() == ct.max()
            a, b = rng.integers(0, 8, 2)
            assert peaks.max_excluding(int(a), int(b)) == np.delete(
                ct, list({int(a), int(b)})
            ).max(initial=0.0)

    def test_all_machines_excluded_returns_zero(self):
        peaks = PeakTracker(np.array([3.0, 7.0]))
        assert peaks.max_excluding(0, 1) == 0.0


class TestDeltaScheduleContract:
    def test_randomized_move_chain_stays_bit_identical(self, small_instance, rng):
        """The acceptance criterion: thousands of random moves, exact ct."""
        s0 = rng.integers(0, small_instance.nmachines, small_instance.ntasks)
        ds = DeltaSchedule(small_instance, s0)
        for step in range(2000):
            task = int(rng.integers(0, small_instance.ntasks))
            machine = int(rng.integers(0, small_instance.nmachines))
            ds.move(task, machine)
            if step % 50 == 0:
                full = compute_completion_times(small_instance, ds.s)
                assert np.array_equal(ds.ct, full), f"drift at step {step}"
                assert ds.makespan() == full.max()
        full = compute_completion_times(small_instance, ds.s)
        assert np.array_equal(ds.ct, full)
        assert ds.makespan() == full.max()

    def test_plain_schedule_does_drift_which_is_why_delta_exists(
        self, small_instance, rng
    ):
        """Control: Schedule's += updates are approximate, Delta's exact."""
        s0 = rng.integers(0, small_instance.nmachines, small_instance.ntasks)
        sched = Schedule(small_instance, s0)
        ds = DeltaSchedule(small_instance, s0)
        exact = True
        for _ in range(2000):
            task = int(rng.integers(0, small_instance.ntasks))
            machine = int(rng.integers(0, small_instance.nmachines))
            sched.move(task, machine)
            ds.move(task, machine)
            full = compute_completion_times(small_instance, sched.s)
            exact = exact and np.array_equal(sched.ct, full)
            assert np.array_equal(ds.ct, full)
        # not asserting `not exact` — just that Delta never broke where
        # Schedule is only close; the tolerance-based invariant:
        np.testing.assert_allclose(sched.ct, ds.ct, rtol=1e-9)

    def test_probe_move_matches_committed_move_bitwise(self, tiny_instance, rng):
        s0 = rng.integers(0, tiny_instance.nmachines, tiny_instance.ntasks)
        ds = DeltaSchedule(tiny_instance, s0)
        for _ in range(300):
            task = int(rng.integers(0, tiny_instance.ntasks))
            machine = int(rng.integers(0, tiny_instance.nmachines))
            probed = ds.probe_move(task, machine)
            ds.move(task, machine)
            assert probed == ds.makespan()

    def test_apply_delta_batch_stays_exact(self, small_instance, rng):
        s0 = rng.integers(0, small_instance.nmachines, small_instance.ntasks)
        ds = DeltaSchedule(small_instance, s0)
        for _ in range(100):
            k = int(rng.integers(1, 12))
            tasks = rng.choice(small_instance.ntasks, size=k, replace=False)
            machines = rng.integers(0, small_instance.nmachines, k)
            ds.apply_delta(tasks, machines)
            full = compute_completion_times(small_instance, ds.s)
            assert np.array_equal(ds.ct, full)
            assert ds.makespan() == full.max()

    def test_rejects_bad_assignment(self, tiny_instance):
        with pytest.raises(ValueError):
            DeltaSchedule(tiny_instance, np.zeros(3, dtype=np.int32))
        bad = np.full(tiny_instance.ntasks, tiny_instance.nmachines, dtype=np.int32)
        with pytest.raises(ValueError):
            DeltaSchedule(tiny_instance, bad)

"""Tests for the Gantt renderer and run-result persistence."""

import numpy as np
import pytest

from repro import AsyncCGA, CGAConfig, StopCondition
from repro.scheduling import Schedule
from repro.util import (
    load_result,
    render_gantt,
    result_from_dict,
    result_to_dict,
    save_result,
)


class TestGantt:
    def test_renders_all_machines(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        out = render_gantt(sched)
        for m in range(tiny_instance.nmachines):
            assert f"m{m:02d}" in out
        assert "makespan" in out

    def test_machine_truncation(self, small_instance, rng):
        sched = Schedule.random(small_instance, rng)
        out = render_gantt(sched, max_machines=3)
        assert "more machines" in out
        assert "m03" not in out

    def test_ready_time_shown_as_leading_dots(self):
        from repro.etc import ETCMatrix

        inst = ETCMatrix(np.ones((2, 2)) * 5, ready_times=np.array([10.0, 0.0]))
        sched = Schedule(inst, np.array([0, 1], dtype=np.int32))
        line0 = render_gantt(sched).splitlines()[0]
        assert "." in line0

    def test_rejects_narrow_width(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        with pytest.raises(ValueError):
            render_gantt(sched, width=5)

    def test_loads_column_matches_ct(self, tiny_instance, rng):
        sched = Schedule.random(tiny_instance, rng)
        lines = render_gantt(sched).splitlines()
        shown = float(lines[0].rsplit("|", 1)[1].replace(",", ""))
        assert shown == pytest.approx(round(sched.ct[0]), abs=1)


class TestPersistence:
    @pytest.fixture
    def result(self, tiny_instance):
        eng = AsyncCGA(
            tiny_instance,
            CGAConfig(grid_rows=4, grid_cols=4, ls_iterations=1, seed_with_minmin=False),
            rng=0,
        )
        return eng.run(StopCondition(max_generations=3))

    def test_dict_roundtrip(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back.best_fitness == result.best_fitness
        assert np.array_equal(back.best_assignment, result.best_assignment)
        assert back.evaluations == result.evaluations
        assert back.history == result.history

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "runs" / "r0.json"
        save_result(result, path)
        back = load_result(path)
        assert back.best_fitness == result.best_fitness
        assert back.extra == result.extra or back.extra is not None

    def test_assignment_dtype_restored(self, result, tmp_path):
        path = tmp_path / "r.json"
        save_result(result, path)
        assert load_result(path).best_assignment.dtype == np.int32

    def test_rejects_unknown_version(self, result):
        data = result_to_dict(result)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            result_from_dict(data)

    def test_numpy_values_in_extra_serialize(self, result, tmp_path):
        result.extra["np_scalar"] = np.float64(1.5)
        result.extra["np_array"] = np.arange(3)
        path = tmp_path / "r.json"
        save_result(result, path)
        back = load_result(path)
        assert back.extra["np_scalar"] == 1.5
        assert back.extra["np_array"] == [0, 1, 2]

"""Tests for the population diversity metrics."""

import numpy as np
import pytest

from repro.cga import AsyncCGA, CGAConfig, Grid2D, Population, StopCondition
from repro.cga.diversity import (
    allele_entropy,
    diversity_report,
    fitness_spread,
    hamming_diversity,
)


@pytest.fixture
def random_pop(tiny_instance, rng):
    pop = Population(tiny_instance, Grid2D(4, 4))
    pop.init_random(rng)
    return pop


@pytest.fixture
def collapsed_pop(tiny_instance, rng):
    pop = Population(tiny_instance, Grid2D(4, 4))
    pop.init_random(rng)
    pop.s[:] = pop.s[0]
    pop.evaluate_all()
    return pop


class TestHamming:
    def test_random_population_is_diverse(self, random_pop):
        assert hamming_diversity(random_pop) > 0.5

    def test_collapsed_population_is_zero(self, collapsed_pop):
        assert hamming_diversity(collapsed_pop) == 0.0

    def test_bounded(self, random_pop):
        d = hamming_diversity(random_pop)
        assert 0.0 <= d <= 1.0

    def test_single_individual(self, tiny_instance, rng):
        pop = Population(tiny_instance, Grid2D(1, 1))
        pop.init_random(rng)
        assert hamming_diversity(pop) == 0.0

    def test_deterministic_with_seeded_rng(self, random_pop):
        a = hamming_diversity(random_pop, np.random.default_rng(1))
        b = hamming_diversity(random_pop, np.random.default_rng(1))
        assert a == b


class TestEntropy:
    def test_random_population_high_entropy(self, random_pop):
        assert allele_entropy(random_pop) > 0.7

    def test_collapsed_population_zero(self, collapsed_pop):
        assert allele_entropy(collapsed_pop) == 0.0

    def test_bounded(self, random_pop):
        assert 0.0 <= allele_entropy(random_pop) <= 1.0

    def test_single_machine_zero(self, rng):
        from repro.etc import make_instance

        inst = make_instance(8, 1, seed=0)
        pop = Population(inst, Grid2D(2, 2))
        pop.init_random(rng)
        assert allele_entropy(pop) == 0.0


class TestFitnessSpread:
    def test_random_population_spreads(self, random_pop):
        assert fitness_spread(random_pop) > 0.0

    def test_collapsed_population_zero(self, collapsed_pop):
        assert fitness_spread(collapsed_pop) == pytest.approx(0.0)


class TestEvolutionShrinksDiversity:
    def test_diversity_decreases_under_selection(self, small_instance):
        config = CGAConfig(
            grid_rows=6, grid_cols=6, ls_iterations=2, seed_with_minmin=False
        )
        eng = AsyncCGA(small_instance, config, rng=0)
        before = diversity_report(eng.pop)
        eng.run(StopCondition(max_generations=30))
        after = diversity_report(eng.pop)
        assert after["hamming"] < before["hamming"]
        assert after["entropy"] < before["entropy"]
        assert after["fitness_cv"] < before["fitness_cv"]

    def test_report_keys(self, random_pop):
        rep = diversity_report(random_pop)
        assert set(rep) == {"hamming", "entropy", "fitness_cv"}

"""Ablation A7 — mean-field vs tracked contention modeling.

The headline Fig. 4 numbers come from a *mean-field* surcharge on
boundary-crossing steps.  Is that abstraction sound?  This bench reruns
the speedup grid under the *tracked* mode — true per-individual lock
bookkeeping in virtual time plus a physically-motivated cacheline
charge — and checks that:

* both modes agree on every Fig. 4 shape claim;
* the *measured queuing wait* in tracked mode is a negligible share of
  virtual time — i.e. RW-lock conflicts are rare at L5/256 scale and
  the real boundary cost is cache-coherence traffic, which is exactly
  what the mean-field term abstracts.
"""

from repro.cga import CGAConfig, StopCondition
from repro.etc import load_benchmark
from repro.experiments import ascii_table
from repro.parallel import SimulatedPACGA

from conftest import env_vtime, save_artifact

INST = load_benchmark("u_c_hihi.0")


def _grid(contention: str, virtual_time: float):
    out = {}
    waits = {}
    for iters in (0, 10):
        row = []
        for n in (1, 2, 3, 4):
            sim = SimulatedPACGA(
                INST,
                CGAConfig(n_threads=n, ls_iterations=iters),
                seed=3,
                history_stride=10**9,
                contention=contention,
            )
            res = sim.run(StopCondition(virtual_time=virtual_time))
            row.append(res.evaluations)
            if contention == "tracked" and n == 4:
                waits[iters] = res.extra["conflict_wait_s"] / (virtual_time * n)
        out[iters] = [100.0 * e / row[0] for e in row]
    return out, waits


def _run():
    vt = env_vtime(0.25)
    mean, _ = _grid("meanfield", vt)
    tracked, waits = _grid("tracked", vt)
    return mean, tracked, waits


def test_contention_models_agree(benchmark):
    """Tracked bookkeeping must validate the mean-field abstraction."""
    mean, tracked, waits = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for iters in (0, 10):
        rows.append(
            [f"meanfield/iter{iters}"] + [f"{v:.0f}%" for v in mean[iters]]
        )
        rows.append(
            [f"tracked/iter{iters}"] + [f"{v:.0f}%" for v in tracked[iters]]
        )
    table = ascii_table(["mode", "1t", "2t", "3t", "4t"], rows)
    save_artifact(
        "ablation_contention.txt",
        "A7: mean-field surcharge vs tracked lock bookkeeping\n\n"
        + table
        + "\n\nqueuing wait as share of virtual time at 4 threads: "
        + ", ".join(f"iter{k}={100 * v:.3f}%" for k, v in waits.items())
        + "\n(conflicts are negligible: the boundary cost is cacheline"
        "\ntraffic, which the mean-field term abstracts)\n",
    )
    print("\n" + table)

    # shape agreement: slowdown at 0 iterations under both modes...
    for grid in (mean, tracked):
        assert grid[0][1] < 100.0 and grid[0][3] < grid[0][1]
        # ...and 10-iteration speedup peaking at >= 3 threads
        assert grid[10][2] > grid[10][1] > 100.0
        assert grid[10][3] <= grid[10][2] * 1.05

    # queuing is a negligible share of virtual time
    for share in waits.values():
        assert share < 0.02, waits

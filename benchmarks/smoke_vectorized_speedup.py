#!/usr/bin/env python
"""CI throughput smoke test: fail if the vectorized engine regresses.

Measures evaluations/second of ``VectorizedSyncCGA`` against ``AsyncCGA``
on a 512x16 benchmark instance (pop 256) and exits non-zero when the
speedup drops below the floor (default 2x, override with
``REPRO_SMOKE_MIN_SPEEDUP``).  Each engine takes the best of three runs
so one noisy-neighbor hiccup on a shared CI box does not fail the build.

Usage: PYTHONPATH=src python benchmarks/smoke_vectorized_speedup.py
"""

from __future__ import annotations

import os
import sys

from repro import AsyncCGA, CGAConfig, StopCondition, VectorizedSyncCGA, load_benchmark

MIN_SPEEDUP = float(os.environ.get("REPRO_SMOKE_MIN_SPEEDUP", "2.0"))
RUNS = 3


def best_rate(engine_factory, budget: StopCondition) -> float:
    rates = []
    for _ in range(RUNS):
        res = engine_factory().run(budget)
        rates.append(res.evaluations / res.elapsed_s)
    return max(rates)


def main() -> int:
    inst = load_benchmark("u_c_hihi.0")
    cfg = CGAConfig(ls_iterations=5)
    vec = best_rate(
        lambda: VectorizedSyncCGA(inst, cfg, rng=0, record_history=False),
        StopCondition(max_evaluations=256 * 200),
    )
    scalar = best_rate(
        lambda: AsyncCGA(inst, cfg, rng=0, record_history=False),
        StopCondition(max_evaluations=2560),
    )
    speedup = vec / scalar
    print(f"async      : {scalar:>10,.0f} evals/s")
    print(f"vectorized : {vec:>10,.0f} evals/s")
    print(f"speedup    : {speedup:.2f}x (floor: {MIN_SPEEDUP:.1f}x)")
    if speedup < MIN_SPEEDUP:
        print("FAIL: vectorized engine below the speedup floor", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

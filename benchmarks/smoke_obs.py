#!/usr/bin/env python
"""CI observability smoke test: schemas valid, overhead bounded.

Runs a short instrumented PA-CGA (thread engine, 2 threads) into a
telemetry bundle and fails the build when

1. the bundle is incomplete or any artifact violates its schema
   (metrics.json merged/per-thread shape incl. the op.* attribution
   counters, Chrome trace_event fields, JSONL time-series rows,
   grid.jsonl per-cell snapshot rows), or
2. the *instrumented* run is more than ``REPRO_OBS_MAX_OVERHEAD``
   (default 10%) slower than an uninstrumented run at the same
   evaluation budget — **median of three** timed runs each (not a
   single pair, not best-of: the median discards one-off scheduler
   hiccups in either direction), so a noisy CI neighbor does not flake
   the build.

Usage: PYTHONPATH=src python benchmarks/smoke_obs.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro import CGAConfig, Observer, StopCondition, ThreadedPACGA, load_benchmark

MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "0.10"))
RUNS = 3
BUDGET = 1536


def check(ok: bool, what: str) -> None:
    if not ok:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)


def validate_bundle(out: Path, n_threads: int) -> None:
    expected = {
        "meta.json",
        "metrics.json",
        "timeseries.jsonl",
        "grid.jsonl",
        "trace.json",
        "report.md",
    }
    check({p.name for p in out.iterdir()} == expected, f"bundle files != {expected}")

    metrics = json.loads((out / "metrics.json").read_text())
    check(set(metrics) == {"merged", "per_thread"}, "metrics.json top-level shape")
    check(
        set(metrics["per_thread"]) == {str(t) for t in range(n_threads)},
        f"metrics.json must carry {n_threads} per-thread series",
    )
    for name, rec in [("merged", metrics["merged"]), *metrics["per_thread"].items()]:
        check(
            {"name", "counters", "gauges", "histograms"} <= set(rec),
            f"recorder {name} missing sections",
        )
        for key, h in rec["histograms"].items():
            check(
                {"bounds", "counts", "count", "sum", "mean", "p50", "p99"} <= set(h),
                f"histogram {key} schema",
            )
            check(len(h["counts"]) == len(h["bounds"]) + 1, f"histogram {key} buckets")
            check(sum(h["counts"]) == h["count"], f"histogram {key} count mismatch")
    merged = metrics["merged"]["counters"]
    check(merged.get("breeding.evaluations", 0) >= BUDGET, "merged evaluation count")
    check("sweep_us" in metrics["merged"]["histograms"], "sweep latency histogram")
    check(
        merged.get("op.replacement.attempts", 0) >= BUDGET,
        "operator attribution counters (op.*) missing from merged metrics",
    )

    grid_rows = [
        json.loads(line) for line in (out / "grid.jsonl").read_text().splitlines()
    ]
    check(len(grid_rows) >= 1, "grid stream must have snapshots")
    for row in grid_rows:
        check(
            {
                "t_s",
                "generation",
                "shape",
                "best",
                "mean",
                "takeover_fraction",
                "fitness_entropy",
                "fitness",
                "age",
                "improvements",
            }
            <= set(row),
            "grid.jsonl row schema",
        )
        n_cells = row["shape"][0] * row["shape"][1]
        check(
            len(row["fitness"]) == len(row["age"]) == len(row["improvements"]) == n_cells,
            "grid.jsonl per-cell arrays must match the grid shape",
        )
        check(0.0 <= row["takeover_fraction"] <= 1.0, "takeover_fraction range")
        check(0.0 <= row["fitness_entropy"] <= 1.0, "fitness_entropy range")

    rows = [
        json.loads(line) for line in (out / "timeseries.jsonl").read_text().splitlines()
    ]
    check(len(rows) >= 1, "time series must have rows")
    for row in rows:
        check(
            {"t_s", "evaluations", "best", "mean", "entropy"} <= set(row),
            "time-series row schema",
        )
    check(
        rows == sorted(rows, key=lambda r: r["evaluations"]),
        "time-series rows must be ordered by evaluations",
    )

    trace = json.loads((out / "trace.json").read_text())
    check(
        set(trace) == {"traceEvents", "displayTimeUnit"}, "trace.json top-level shape"
    )
    events = trace["traceEvents"]
    check(len(events) > 0, "trace must contain events")
    for ev in events:
        check(
            ev["ph"] in ("M", "X", "i", "C") and "tid" in ev and "pid" in ev,
            f"trace event schema: {ev}",
        )
        if ev["ph"] == "X":
            check(ev["ts"] >= 0 and ev["dur"] >= 0, "span timestamps")
    lanes = {ev["tid"] for ev in events if ev["ph"] == "X"}
    check(lanes == set(range(n_threads)), "one span lane per worker thread")

    meta = json.loads((out / "meta.json").read_text())
    check(meta.get("result", {}).get("evaluations", 0) >= BUDGET, "meta.json result")


def timed_run(inst, cfg, obs_factory) -> float:
    times = []
    for _ in range(RUNS):
        obs = obs_factory()
        eng = ThreadedPACGA(inst, cfg, seed=0, obs=obs)
        t0 = time.perf_counter()
        eng.run(StopCondition(max_evaluations=BUDGET))
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def main() -> int:
    inst = load_benchmark("u_c_hihi.0")
    n_threads = 2
    # Table 1 / Fig. 5 configuration (10 LS iterations): the overhead
    # ceiling is judged against the workload the paper actually runs
    cfg = CGAConfig(ls_iterations=10, n_threads=n_threads)

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bundle"
        obs = Observer(out=out, sample_every_evals=256)
        eng = ThreadedPACGA(inst, cfg, seed=0, obs=obs)
        eng.run(StopCondition(max_evaluations=BUDGET))
        obs.finalize()
        validate_bundle(out, n_threads)
    print("bundle schemas: OK")

    # the instrumented observer runs with grid-dynamics recording on
    # (the default) and profiling OFF — the --obs-profile off-path must
    # stay under the same ceiling as the rest of the telemetry stack
    plain = timed_run(inst, cfg, lambda: None)
    instrumented = timed_run(
        inst, cfg, lambda: Observer(out=None, sample_every_evals=256, grid=True)
    )
    overhead = instrumented / plain - 1.0
    print(f"uninstrumented : {plain:8.3f} s (median of {RUNS})")
    print(f"instrumented   : {instrumented:8.3f} s (median of {RUNS})")
    print(f"overhead       : {100 * overhead:+.1f}% (ceiling: {100 * MAX_OVERHEAD:.0f}%)")
    check(overhead <= MAX_OVERHEAD, "instrumentation overhead above ceiling")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

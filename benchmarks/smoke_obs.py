#!/usr/bin/env python
"""CI observability smoke test: schemas valid, overhead bounded.

Runs a short instrumented PA-CGA (thread engine, 2 threads) into a
telemetry bundle and fails the build when

1. the bundle is incomplete or any artifact violates its schema
   (metrics.json merged/per-thread shape incl. the op.* attribution
   counters, Chrome trace_event fields, JSONL time-series rows,
   grid.jsonl per-cell snapshot rows), or
2. a run with the full process-observability layer on (flight
   recorder, resource sampler, statistical stack sampler) leaves the
   expected artifacts with valid schemas, or
3. the *instrumented* run — with resource sampling and the stack
   sampler enabled on top of the metrics/trace/grid stack — is more
   than ``REPRO_OBS_MAX_OVERHEAD`` (default 10%) slower than an
   uninstrumented run at the same evaluation budget — measured as the
   **median of interleaved plain/instrumented run-pair ratios** (after
   one warmup of each): each ratio compares two runs executed
   back-to-back, so slow load drift on a busy CI machine cancels
   instead of biasing whichever side ran last, and the median discards
   one-off scheduler hiccups in either direction.

Usage: PYTHONPATH=src python benchmarks/smoke_obs.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro import CGAConfig, Observer, StopCondition, ThreadedPACGA, load_benchmark

MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "0.10"))
RUNS = 3
BUDGET = 1536


def check(ok: bool, what: str) -> None:
    if not ok:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)


def validate_bundle(out: Path, n_threads: int) -> None:
    expected = {
        "meta.json",
        "metrics.json",
        "timeseries.jsonl",
        "grid.jsonl",
        "trace.json",
        "report.md",
    }
    check({p.name for p in out.iterdir()} == expected, f"bundle files != {expected}")

    metrics = json.loads((out / "metrics.json").read_text())
    check(set(metrics) == {"merged", "per_thread"}, "metrics.json top-level shape")
    check(
        set(metrics["per_thread"]) == {str(t) for t in range(n_threads)},
        f"metrics.json must carry {n_threads} per-thread series",
    )
    for name, rec in [("merged", metrics["merged"]), *metrics["per_thread"].items()]:
        check(
            {"name", "counters", "gauges", "histograms"} <= set(rec),
            f"recorder {name} missing sections",
        )
        for key, h in rec["histograms"].items():
            check(
                {"bounds", "counts", "count", "sum", "mean", "p50", "p99"} <= set(h),
                f"histogram {key} schema",
            )
            check(len(h["counts"]) == len(h["bounds"]) + 1, f"histogram {key} buckets")
            check(sum(h["counts"]) == h["count"], f"histogram {key} count mismatch")
    merged = metrics["merged"]["counters"]
    check(merged.get("breeding.evaluations", 0) >= BUDGET, "merged evaluation count")
    check("sweep_us" in metrics["merged"]["histograms"], "sweep latency histogram")
    check(
        merged.get("op.replacement.attempts", 0) >= BUDGET,
        "operator attribution counters (op.*) missing from merged metrics",
    )

    grid_rows = [
        json.loads(line) for line in (out / "grid.jsonl").read_text().splitlines()
    ]
    check(len(grid_rows) >= 1, "grid stream must have snapshots")
    for row in grid_rows:
        check(
            {
                "t_s",
                "generation",
                "shape",
                "best",
                "mean",
                "takeover_fraction",
                "fitness_entropy",
                "fitness",
                "age",
                "improvements",
            }
            <= set(row),
            "grid.jsonl row schema",
        )
        n_cells = row["shape"][0] * row["shape"][1]
        check(
            len(row["fitness"]) == len(row["age"]) == len(row["improvements"]) == n_cells,
            "grid.jsonl per-cell arrays must match the grid shape",
        )
        check(0.0 <= row["takeover_fraction"] <= 1.0, "takeover_fraction range")
        check(0.0 <= row["fitness_entropy"] <= 1.0, "fitness_entropy range")

    rows = [
        json.loads(line) for line in (out / "timeseries.jsonl").read_text().splitlines()
    ]
    check(len(rows) >= 1, "time series must have rows")
    for row in rows:
        check(
            {"t_s", "evaluations", "best", "mean", "entropy"} <= set(row),
            "time-series row schema",
        )
    check(
        rows == sorted(rows, key=lambda r: r["evaluations"]),
        "time-series rows must be ordered by evaluations",
    )

    trace = json.loads((out / "trace.json").read_text())
    check(
        set(trace) == {"traceEvents", "displayTimeUnit"}, "trace.json top-level shape"
    )
    events = trace["traceEvents"]
    check(len(events) > 0, "trace must contain events")
    for ev in events:
        check(
            ev["ph"] in ("M", "X", "i", "C") and "tid" in ev and "pid" in ev,
            f"trace event schema: {ev}",
        )
        if ev["ph"] == "X":
            check(ev["ts"] >= 0 and ev["dur"] >= 0, "span timestamps")
    lanes = {ev["tid"] for ev in events if ev["ph"] == "X"}
    check(lanes == set(range(n_threads)), "one span lane per worker thread")

    meta = json.loads((out / "meta.json").read_text())
    check(meta.get("result", {}).get("evaluations", 0) >= BUDGET, "meta.json result")


def validate_process_obs_bundle(out: Path) -> None:
    """Schemas of the flight / resources / samples artifacts."""
    from repro.obs.flight import load_flight_dir
    from repro.obs.resources import load_resource_rows
    from repro.obs.sample import parse_collapsed

    rings = load_flight_dir(out)
    check("main" in rings, "flight/main.bin missing or unreadable")
    kinds = {e["kind"] for e in rings["main"]}
    check("budget.start" in kinds, "flight ring missing budget.start")
    check("budget.done" in kinds, "flight ring missing budget.done")
    for events in rings.values():
        for ev in events:
            check(
                {"seq", "t_s", "kind", "msg", "value"} == set(ev),
                f"flight event schema: {ev}",
            )

    rows = load_resource_rows(out)
    check(len(rows) >= 2, "resource sampler must stream rows")
    for row in rows:
        check(
            {"t_s", "role", "pid", "rss_mb", "cpu_s"} <= set(row),
            f"resource row schema: {row}",
        )
        check(row["rss_mb"] > 0, "resource row rss_mb must be positive")

    samples = out / "samples.collapsed"
    check(samples.exists(), "samples.collapsed missing")
    counts = parse_collapsed(samples.read_text())
    check(sum(counts.values()) > 0, "stack sampler recorded no samples")

    meta = json.loads((out / "meta.json").read_text())
    check(meta.get("resources", {}).get("peak_rss_mb", 0) > 0, "meta resource peaks")
    check(meta.get("n_stack_samples", 0) > 0, "meta n_stack_samples")


def one_run(inst, cfg, obs_factory) -> float:
    obs = obs_factory()
    eng = ThreadedPACGA(inst, cfg, seed=0, obs=obs)
    t0 = time.perf_counter()
    eng.run(StopCondition(max_evaluations=BUDGET))
    elapsed = time.perf_counter() - t0
    if obs is not None:
        obs.finalize()  # stop sampler threads outside the timed region
    return elapsed


def measure_overhead(inst, cfg, obs_factory) -> tuple[float, float, float]:
    """Median plain time, instrumented time, and pairwise-ratio overhead."""
    one_run(inst, cfg, lambda: None)  # warmup: imports, allocator, caches
    one_run(inst, cfg, obs_factory)
    plains, instrumenteds, ratios = [], [], []
    for _ in range(RUNS):
        plain = one_run(inst, cfg, lambda: None)
        instrumented = one_run(inst, cfg, obs_factory)
        plains.append(plain)
        instrumenteds.append(instrumented)
        ratios.append(instrumented / plain)
    return (
        statistics.median(plains),
        statistics.median(instrumenteds),
        statistics.median(ratios) - 1.0,
    )


def main() -> int:
    inst = load_benchmark("u_c_hihi.0")
    n_threads = 2
    # Table 1 / Fig. 5 configuration (10 LS iterations): the overhead
    # ceiling is judged against the workload the paper actually runs
    cfg = CGAConfig(ls_iterations=10, n_threads=n_threads)

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bundle"
        obs = Observer(out=out, sample_every_evals=256)
        eng = ThreadedPACGA(inst, cfg, seed=0, obs=obs)
        eng.run(StopCondition(max_evaluations=BUDGET))
        obs.finalize()
        validate_bundle(out, n_threads)
    print("bundle schemas: OK")

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bundle"
        obs = Observer(
            out=out,
            sample_every_evals=256,
            flight=True,
            resources=True,
            resource_every_s=0.05,
            stack_sample_s=0.005,
        )
        eng = ThreadedPACGA(inst, cfg, seed=0, obs=obs)
        eng.run(StopCondition(max_evaluations=BUDGET))
        obs.finalize()
        validate_process_obs_bundle(out)
    print("process-observability schemas: OK")

    # the instrumented observer runs with grid-dynamics recording on
    # (the default), the resource sampler and the statistical stack
    # sampler ON, and cProfile OFF — the always-on telemetry stack as a
    # whole must stay under the ceiling
    plain, instrumented, overhead = measure_overhead(
        inst,
        cfg,
        lambda: Observer(
            out=None,
            sample_every_evals=256,
            grid=True,
            resources=True,
            resource_every_s=0.25,
            stack_sample_s=0.005,
        ),
    )
    print(f"uninstrumented : {plain:8.3f} s (median of {RUNS})")
    print(f"instrumented   : {instrumented:8.3f} s (median of {RUNS})")
    print(f"overhead       : {100 * overhead:+.1f}% (ceiling: {100 * MAX_OVERHEAD:.0f}%)")
    check(overhead <= MAX_OVERHEAD, "instrumentation overhead above ceiling")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

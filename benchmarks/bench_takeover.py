"""Extension E5 — takeover time / selection pressure curves.

Quantifies the cGA premise the paper inherits from [1]: selection
pressure (takeover speed) grows with neighborhood size, and
asynchronous updates accelerate takeover dramatically relative to
synchronous ones.  The artifact records the full curves.
"""

from repro.experiments import ascii_table
from repro.experiments.takeover import takeover_experiment

from conftest import save_artifact


def _run():
    settings = [
        ("l5", "sync"),
        ("c9", "sync"),
        ("c13", "sync"),
        ("l5", "async"),
    ]
    return {
        (nb, up): takeover_experiment(neighborhood=nb, update=up, max_generations=100)
        for nb, up in settings
    }


def test_takeover_pressure(benchmark):
    """Takeover ordering: async << sync; bigger neighborhood = faster."""
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for (nb, up), r in results.items():
        rows.append(
            [
                f"{nb}/{up}",
                r.takeover_generation,
                r.generations_to(0.5),
                f"{r.proportions[1]:.3f}",
            ]
        )
    table = ascii_table(
        ["setting", "takeover gen", "gen to 50%", "prop. after 1 gen"], rows
    )
    save_artifact(
        "takeover.txt",
        "E5: takeover time on a 16x16 torus (selection-only, best-2,\n"
        "replace-if-better, one planted optimum)\n\n" + table + "\n",
    )
    print("\n" + table)

    sync_l5 = results[("l5", "sync")].takeover_generation
    sync_c9 = results[("c9", "sync")].takeover_generation
    sync_c13 = results[("c13", "sync")].takeover_generation
    async_l5 = results[("l5", "async")].takeover_generation
    assert sync_c13 <= sync_c9 < sync_l5
    assert async_l5 < sync_c13

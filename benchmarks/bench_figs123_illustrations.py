"""Figures 1–3 — the paper's illustrative diagrams, regenerated.

These figures are not experimental results but depictions of the data
structures; rendering them from the *actual* library objects verifies
the structures match the paper:

* Fig. 1 — a cellular neighborhood on the toroidal mesh (L5 around a
  center cell);
* Fig. 2 — the partition of an 8×8 population over 4 threads;
* Fig. 3 — the solution representation: task-machine assignments plus
  per-machine completion times.
"""

import numpy as np

from repro.cga import Grid2D, neighbor_table
from repro.etc import make_instance
from repro.scheduling import Schedule

from conftest import save_artifact


def render_fig1() -> str:
    """L5 neighborhood of the center cell of an 8x8 torus."""
    grid = Grid2D(8, 8)
    tbl = neighbor_table(grid, "l5")
    center = grid.index(3, 3)
    neigh = set(map(int, tbl[int(center)]))
    lines = ["Fig. 1 — L5 neighborhood ('o' = neighbors, 'X' = individual):", ""]
    for r in range(8):
        row = []
        for c in range(8):
            idx = int(grid.index(r, c))
            if idx == center:
                row.append("X")
            elif idx in neigh:
                row.append("o")
            else:
                row.append(".")
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_fig2() -> str:
    """Partition of an 8x8 population over 4 threads (paper Fig. 2)."""
    grid = Grid2D(8, 8)
    blocks = grid.partition(4)
    owner = np.empty(grid.size, dtype=int)
    for bid, block in enumerate(blocks):
        owner[block] = bid
    lines = ["Fig. 2 — 8x8 population over 4 threads (digit = owning thread):", ""]
    for r in range(8):
        lines.append(" ".join(str(owner[int(grid.index(r, c))]) for c in range(8)))
    return "\n".join(lines)


def render_fig3() -> str:
    """The (S, CT) representation on a small instance (paper Fig. 3)."""
    inst = make_instance(6, 3, seed=1, name="fig3")
    rng = np.random.default_rng(0)
    sched = Schedule.random(inst, rng)
    lines = [
        "Fig. 3 — solution representation:",
        "",
        "task-machine assignments S[t] = m        completion times CT[m]",
    ]
    for t in range(inst.ntasks):
        ct_part = (
            f"    machine {t}: CT = {sched.ct[t]:.2f}" if t < inst.nmachines else ""
        )
        lines.append(f"  task {t} -> machine {int(sched.s[t])}{ct_part}")
    lines.append(f"  evaluate() = max(CT) = {sched.makespan():.2f}")
    return "\n".join(lines)


def test_figures_1_2_3(benchmark):
    """Render the structural figures and check their invariants."""

    def render():
        return render_fig1(), render_fig2(), render_fig3()

    fig1, fig2, fig3 = benchmark.pedantic(render, rounds=1, iterations=1)
    save_artifact("figs123_illustrations.txt", "\n\n".join([fig1, fig2, fig3]) + "\n")
    print("\n" + "\n\n".join([fig1, fig2, fig3]))

    # Fig. 1: exactly 4 neighbors around one X (check the body only)
    fig1_body = "\n".join(fig1.splitlines()[2:])
    assert fig1_body.count("X") == 1
    assert fig1_body.count("o") == 4

    # Fig. 2: 4 owners, 16 cells each, contiguous (2 rows per thread)
    body = [ch for line in fig2.splitlines()[2:] for ch in line.split()]
    assert len(body) == 64
    assert sorted(set(body)) == ["0", "1", "2", "3"]
    assert all(body.count(d) == 16 for d in "0123")

    # Fig. 3: the representation carries both arrays and the evaluation
    assert "evaluate() = max(CT)" in fig3
    assert fig3.count("-> machine") == 6

"""Ablation A1 — transposed ETC layout (paper §3.3).

The paper stores the transposed (machine-major) ETC so that successive
accesses "for the next few tasks on the same machine" hit the same
cacheline, measuring a 5–10 % end-to-end gain.  In NumPy the same
physics shows up as contiguous-row vs strided-column access.  This
bench measures both access patterns on both layouts:

* machine-major sweep (H2LL/CT-update pattern): fast on ``etc_t``,
  strided on ``etc``;
* task-major sweep (evaluation pattern): fast on ``etc``, strided on
  ``etc_t``.

A large instance is used so the matrix exceeds L1/L2 and the cacheline
effect is visible.  The recorded ratio quantifies the claim instead of
taking it on faith.
"""

import numpy as np
import pytest

from repro.etc import make_instance

from conftest import save_artifact

# big enough that rows do not fit in cache together (64 MB of float64)
BIG = make_instance(16384, 512, consistency="i", seed=3, name="layout-big")


def machine_major_sweep(matrix: np.ndarray, transposed: bool) -> float:
    """Sum ETC values machine-by-machine (the hot pattern of §3.3)."""
    total = 0.0
    if transposed:  # matrix is etc_t: rows are machines -> contiguous
        for m in range(matrix.shape[0]):
            total += float(matrix[m].sum())
    else:  # matrix is etc: columns are machines -> strided
        for m in range(matrix.shape[1]):
            total += float(matrix[:, m].sum())
    return total


@pytest.mark.parametrize("layout", ["task-major(etc)", "machine-major(etc_t)"])
def test_machine_sweep_layouts(benchmark, layout):
    """Time the machine-major sweep on both layouts."""
    if layout.startswith("machine"):
        result = benchmark(machine_major_sweep, BIG.etc_t, True)
    else:
        result = benchmark(machine_major_sweep, BIG.etc, False)
    assert result > 0


def test_layout_speedup_recorded(benchmark):
    """Measure the contiguous/strided ratio and record it (timed once)."""
    import time

    def measure():
        reps = 3
        t0 = time.perf_counter()
        for _ in range(reps):
            machine_major_sweep(BIG.etc_t, True)
        contiguous = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            machine_major_sweep(BIG.etc, False)
        strided = (time.perf_counter() - t0) / reps
        return contiguous, strided

    contiguous, strided = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = strided / contiguous
    save_artifact(
        "ablation_etc_layout.txt",
        "A1: machine-major sweep over a 16384x512 ETC matrix\n"
        f"  transposed layout (etc_t, contiguous): {contiguous * 1e3:.2f} ms\n"
        f"  task-major layout (etc, strided)     : {strided * 1e3:.2f} ms\n"
        f"  speedup from storing the transpose   : {ratio:.2f}x\n"
        "  (paper reports 5-10% end-to-end; the pure access-pattern gap\n"
        "   is larger, diluted in practice by the rest of the loop)\n",
    )
    # the paper's direction must hold: transposed is not slower
    assert ratio >= 1.0, (contiguous, strided)

"""Extension E3 — diversity preservation (the cGA premise of §3.1).

"By structuring the population … the population diversity is kept for
longer while different niches appear."  Measurable prediction: after
the same number of evaluations, a cGA with a *small* neighborhood (L5)
retains more genotypic diversity than one with a large neighborhood
(C13), because selection pressure grows with neighborhood size.
"""

from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.cga.diversity import diversity_report
from repro.etc import load_benchmark
from repro.experiments import ascii_table

from conftest import env_runs, save_artifact

INST = load_benchmark("u_i_hihi.0")
BUDGET = StopCondition(max_evaluations=3000)
SHAPES = ("l5", "c9", "c13")


def _run():
    n_runs = env_runs(3)
    rows = {}
    for shape in SHAPES:
        hamming, entropy, best = [], [], []
        for seed in range(n_runs):
            config = CGAConfig(
                neighborhood=shape, ls_iterations=2, seed_with_minmin=False
            )
            eng = AsyncCGA(INST, config, rng=seed, record_history=False)
            res = eng.run(BUDGET)
            rep = diversity_report(eng.pop)
            hamming.append(rep["hamming"])
            entropy.append(rep["entropy"])
            best.append(res.best_fitness)
        rows[shape] = (
            sum(hamming) / n_runs,
            sum(entropy) / n_runs,
            sum(best) / n_runs,
        )
    return rows


def test_small_neighborhood_keeps_diversity(benchmark):
    """L5 must retain more diversity than C13 at equal budgets."""
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = ascii_table(
        ["neighborhood", "hamming diversity", "allele entropy", "mean best"],
        [
            [shape, f"{h:.3f}", f"{e:.3f}", f"{b:,.0f}"]
            for shape, (h, e, b) in rows.items()
        ],
    )
    save_artifact(
        "diversity_neighborhoods.txt",
        f"E3: diversity after {BUDGET.max_evaluations} evaluations, u_i_hihi.0\n\n"
        + table
        + "\n",
    )
    print("\n" + table)
    assert rows["l5"][0] > rows["c13"][0], rows
    assert rows["l5"][1] > rows["c13"][1], rows

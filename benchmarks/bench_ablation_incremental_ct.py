"""Ablation A2 — incremental completion times (paper §3.3).

The representation keeps CT up to date through every operator so that
``evaluate()`` is just a max.  This bench quantifies that choice:

* a single task move: O(1) incremental update vs O(ntasks) recompute;
* a two-point-crossover child: O(changed genes) delta vs full
  recompute;
* end-to-end: one full H2LL pass with and without cached CT.
"""

import numpy as np
import pytest

from repro.cga.crossover import child_with_ct, two_point
from repro.etc import load_benchmark
from repro.scheduling.schedule import Schedule, compute_completion_times

from conftest import save_artifact

INST = load_benchmark("u_c_hihi.0")


@pytest.fixture(scope="module")
def sched():
    return Schedule.random(INST, np.random.default_rng(0))


def test_move_incremental(benchmark, sched):
    s = sched.copy()
    benchmark(s.move, 5, 3)


def test_move_with_full_recompute(benchmark, sched):
    s = sched.copy()

    def move_and_recompute():
        s.s[5] = 3
        s.ct[:] = compute_completion_times(INST, s.s)

    benchmark(move_and_recompute)


def test_crossover_child_ct_delta(benchmark, sched):
    rng = np.random.default_rng(1)
    p2 = np.roll(sched.s, 11)
    benchmark(lambda: child_with_ct(INST, sched.s, sched.ct, p2, two_point, rng))


def test_crossover_child_ct_recompute(benchmark, sched):
    rng = np.random.default_rng(1)
    p2 = np.roll(sched.s, 11)

    def full():
        child = two_point(sched.s, p2, rng)
        return child, compute_completion_times(INST, child)

    benchmark(full)


def test_incremental_ct_speedup_recorded(benchmark, sched):
    """Record the measured advantage (timed once)."""
    import time

    def measure():
        s = sched.copy()
        reps = 20000
        t0 = time.perf_counter()
        for i in range(reps):
            s.move(i % INST.ntasks, i % INST.nmachines)
        inc = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for i in range(reps // 100):
            s.s[i % INST.ntasks] = i % INST.nmachines
            s.ct[:] = compute_completion_times(INST, s.s)
        full = (time.perf_counter() - t0) / (reps // 100)
        return inc, full

    inc, full = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = full / inc
    save_artifact(
        "ablation_incremental_ct.txt",
        "A2: completion-time maintenance per task move (512x16 instance)\n"
        f"  incremental update : {inc * 1e6:.2f} us\n"
        f"  full recomputation : {full * 1e6:.2f} us\n"
        f"  speedup            : {ratio:.1f}x\n",
    )
    assert ratio > 3.0, (inc, full)

"""Ablation A3 — asynchronous vs synchronous cell updates.

The paper builds on the finding ([1], [14]) that asynchronous CGAs
*converge faster* than synchronous ones: offspring become visible
immediately, so good genes spread within the same sweep.  The classical
trade-off is speed vs diversity — async may converge prematurely, so
its advantage is in early population-mean trajectory, not necessarily
in final best-of-run quality.

This bench measures both sides with identical operators and seeds:

* convergence speed: population mean makespan after a short budget —
  asserted (async must be at least as converged);
* final quality at a larger budget — recorded, not asserted.
"""


from repro.cga import AsyncCGA, CGAConfig, StopCondition, SyncCGA
from repro.etc import load_benchmark
from repro.experiments import ascii_table, summarize

from conftest import env_runs, save_artifact

INST = load_benchmark("u_i_hihi.0")
CFG = CGAConfig(ls_iterations=5)
EARLY = StopCondition(max_evaluations=1280)   # 5 generations of 256
LATE = StopCondition(max_evaluations=4000)


def _run():
    n_runs = env_runs(3)
    early_mean = {"async": [], "sync": []}
    late_best = {"async": [], "sync": []}
    for seed in range(n_runs):
        a = AsyncCGA(INST, CFG, rng=seed).run(EARLY)
        s = SyncCGA(INST, CFG, rng=seed).run(EARLY)
        early_mean["async"].append(a.history[-1][3])
        early_mean["sync"].append(s.history[-1][3])
        late_best["async"].append(
            AsyncCGA(INST, CFG, rng=seed).run(LATE).best_fitness
        )
        late_best["sync"].append(SyncCGA(INST, CFG, rng=seed).run(LATE).best_fitness)
    return early_mean, late_best


def test_async_vs_sync(benchmark):
    """Convergence speed (asserted) and final quality (recorded)."""
    early_mean, late_best = benchmark.pedantic(_run, rounds=1, iterations=1)
    ea, es = summarize(early_mean["async"]), summarize(early_mean["sync"])
    la, ls_ = summarize(late_best["async"]), summarize(late_best["sync"])
    table = ascii_table(
        ["metric", "asynchronous", "synchronous"],
        [
            [f"population mean @ {EARLY.max_evaluations} evals", f"{ea.mean:,.0f}", f"{es.mean:,.0f}"],
            [f"best makespan  @ {LATE.max_evaluations} evals", f"{la.mean:,.0f}", f"{ls_.mean:,.0f}"],
        ],
    )
    save_artifact(
        "ablation_async_sync.txt",
        f"A3: async vs sync updates, u_i_hihi.0, {ea.n} runs\n\n{table}\n"
        "\nThe async advantage is convergence *speed* (first row); final\n"
        "best-of-run quality (second row) trades against diversity and\n"
        "may go either way — consistent with the cGA literature.\n",
    )
    print("\n" + table)
    # the paper's premise: the async population converges faster
    assert ea.mean <= es.mean * 1.02, (ea.mean, es.mean)

#!/usr/bin/env python
"""CI post-mortem smoke test: the black box works end to end.

Two phases against the shm engine (forked workers, the processes the
rest of the obs stack can only watch from the outside):

1. **Live interrogation** — start a bounded ``repro run --engine shm``
   with a telemetry bundle, send ``SIGUSR1`` to the parent and to one
   forked worker mid-run, and assert both append all-thread stack
   dumps into ``<bundle>/flight/`` while the run keeps going (the run
   must still exit 0).
2. **Crash attribution** — rerun with ``REPRO_SHM_CRASH_WORKER=1`` so
   worker 1 raises mid-sweep; the run must fail, and
   ``repro obs postmortem`` must exit 0 and render a report naming the
   crashed worker with its traceback, flight events, and final
   resource sample.

Usage: PYTHONPATH=src python benchmarks/smoke_postmortem.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

PY = sys.executable
# oversubscribe: this smoke interrogates per-worker processes, so the
# engine must fork one process per block even on a single-core runner
ENV = {**os.environ, "PYTHONPATH": "src", "REPRO_SHM_OVERSUBSCRIBE": "1"}


def check(ok: bool, what: str) -> None:
    if not ok:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)


def run_cmd(bundle: Path, *extra: str) -> list[str]:
    return [
        PY,
        "-m",
        "repro",
        "run",
        "--instance",
        "u_c_hihi.0",
        "--engine",
        "shm",
        "--threads",
        "2",
        "--ls-iters",
        "5",
        "--evals",
        "2000000",
        "--wall",
        "12",
        "--obs-out",
        str(bundle),
        *extra,
    ]


def worker_pids(bundle: Path, deadline_s: float = 10.0) -> list[int]:
    """The forked worker pids, as the workers' own resource samplers
    report them (``flight/resources-w*.jsonl`` rows carry ``pid``).

    /proc children would be ambiguous — the multiprocessing resource
    tracker is a child of the same parent and must not be signalled.
    """
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        pids = []
        for path in sorted((bundle / "flight").glob("resources-w*.jsonl")):
            try:
                first = path.read_text().splitlines()[0]
                pids.append(int(json.loads(first)["pid"]))
            except (OSError, IndexError, ValueError, KeyError):
                pass
        if len(pids) >= 2:
            return pids
        time.sleep(0.1)
    return []


def wait_for(predicate, what: str, deadline_s: float = 10.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    check(False, f"timed out waiting for {what}")


def phase_live_dump(tmp: Path) -> None:
    bundle = tmp / "live"
    proc = subprocess.Popen(
        run_cmd(bundle),
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        flight = bundle / "flight"
        wait_for(
            lambda: (flight / "w0.bin").exists() and (flight / "w1.bin").exists(),
            "worker flight rings",
        )
        kids = worker_pids(bundle)
        check(len(kids) >= 2, f"expected 2 forked workers, found {kids}")

        # interrogate the live run from the outside with plain kill
        os.kill(proc.pid, signal.SIGUSR1)
        os.kill(kids[0], signal.SIGUSR1)
        wait_for(
            lambda: (flight / "stacks-main.txt").exists(),
            "parent SIGUSR1 stack dump",
        )
        wait_for(
            lambda: any(flight.glob("stacks-w*.txt")),
            "worker SIGUSR1 stack dump",
        )
        check(proc.poll() is None, "run must survive the SIGUSR1 interrogation")
    finally:
        out, _ = proc.communicate(timeout=60)
    check(proc.returncode == 0, f"live run failed (rc={proc.returncode}):\n{out}")
    main_dump = (flight / "stacks-main.txt").read_text()
    check("SIGUSR1" in main_dump, "parent dump must be SIGUSR1-tagged")
    worker_dump = next(iter(sorted(flight.glob("stacks-w*.txt")))).read_text()
    check("=== stack dump" in worker_dump, "worker dump must be a stack dump")
    print("phase 1 (SIGUSR1 live stack dumps): OK")


def phase_crash_postmortem(tmp: Path) -> None:
    bundle = tmp / "crashed"
    env = {**ENV, "REPRO_SHM_CRASH_WORKER": "1", "REPRO_SHM_CRASH_AFTER": "3"}
    proc = subprocess.run(
        run_cmd(bundle),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=120,
    )
    check(proc.returncode != 0, "injected worker crash must fail the run")

    meta = json.loads((bundle / "meta.json").read_text())
    check(meta["interrupted_by"]["role"] == "w1", "meta must blame worker 1")

    render = subprocess.run(
        [PY, "-m", "repro", "obs", "postmortem", str(bundle)],
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=60,
    )
    check(
        render.returncode == 0,
        f"repro obs postmortem must exit 0 (rc={render.returncode}):\n{render.stdout}",
    )
    report = render.stdout
    for needle in (
        "raised by   : role=w1",
        "== crashed w1",
        "injected crash in shm worker 1",
        "final resources: rss",
        "== flight ring w1",
        "== resources:",
    ):
        check(needle in report, f"postmortem report missing {needle!r}:\n{report}")
    print("phase 2 (injected crash -> postmortem report): OK")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        phase_live_dump(Path(tmp))
        phase_crash_postmortem(Path(tmp))
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared benchmark configuration.

Budgets follow the paper's protocols but are scaled so the whole suite
finishes in minutes instead of the paper's 100 × 90 s per cell.  Two
environment variables rescale everything:

* ``REPRO_BENCH_RUNS``  — independent runs per cell (default 2–3);
* ``REPRO_BENCH_VTIME`` — multiplier on every virtual-time budget
  (default 1.0; the paper scale is roughly 180x).

Artifacts (the regenerated tables/figures as text and CSV) are written
to ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def env_runs(default: int) -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def env_vtime(default: float) -> float:
    return default * float(os.environ.get("REPRO_BENCH_VTIME", "1.0"))


def save_artifact(name: str, text: str) -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text, encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR

"""Extension E7 — rescheduling policies in the dynamic grid of §2.1.

Randomized timeline ensemble (batches arriving over a day, one node
failure, one fast join) under three policies: MCT, Min-min and a
PA-CGA rescheduler.  Asserted: the optimizing policies beat the
throwaway-greedy MCT on mean makespan; PA-CGA is at least competitive
with Min-min.  The migration/flowtime trade is recorded.
"""

from repro.experiments.dynamic_study import dynamic_study

from conftest import env_runs, save_artifact


def _run():
    return dynamic_study(n_timelines=env_runs(4), seed=9, pacga_evals=1500)


def test_dynamic_policies(benchmark):
    """Optimizing reschedulers must beat greedy MCT over the ensemble."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = result.table()
    save_artifact(
        "dynamic_study.txt",
        f"E7: dynamic grid rescheduling, {result.n_timelines} random timelines\n\n"
        + table
        + "\n",
    )
    print("\n" + table)

    assert result.makespan["min-min"] <= result.makespan["mct"] * 1.02
    assert result.makespan["pa-cga"] <= result.makespan["mct"] * 1.02
    assert result.best_policy() in ("pa-cga", "min-min")

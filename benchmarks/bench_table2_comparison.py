"""Table 2 — PA-CGA vs Struggle GA and cMA+LTH on all twelve instances.

Reruns every algorithm *in this library* under the paper's wall-clock
protocol (same machine, same time budget; the 10 s column gets the
budget divided by the paper's measured machine ratio of 9).  The paper
quotes its baseline numbers from older studies on older hardware — here
the baselines are reimplemented and rerun, so the honest comparison is
time-fair on identical instances.

Asserted claims (robust at bench-scale budgets):

* PA-CGA beats the Struggle GA on (almost) every instance;
* PA-CGA with the full budget is never worse than with the 1/9 budget;
* even the 1/9-budget PA-CGA already beats the full-budget Struggle GA
  on a substantial share of instances (the paper's "10 seconds of
  runtime achieves better results than the literature").

The cMA+LTH relationship is *recorded, not asserted*: our
reimplemented LTH is a strong steepest-descent/tabu hybrid that wins at
small budgets and is only overtaken by PA-CGA near paper-scale budgets
(see EXPERIMENTS.md T2 for the crossover discussion).
"""

from repro.experiments import PAPER_TABLE2, comparison_experiment, format_float, write_csv

from conftest import OUT_DIR, env_runs, env_vtime, save_artifact


def _run():
    return comparison_experiment(
        virtual_time=env_vtime(2.0),  # real seconds per algorithm per run
        n_runs=env_runs(2),
        seed=11,
        protocol="time",
    )


def test_table2_comparison(benchmark):
    """Regenerate Table 2 (time-fair rerun) and check the claims."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = result.table(include_paper=True)
    instances = result.instances()
    pa10_beats_struggle = [
        i
        for i in instances
        if result.means[(i, "pa-cga-10s")] < result.means[(i, "struggle-ga")]
    ]
    lines = [
        f"Table 2 (time-fair rerun on this machine): wall budget="
        f"{result.virtual_time}s per algorithm, runs={result.n_runs}",
        "",
        table,
        "",
        f"PA-CGA-10s already beats full-budget Struggle GA on "
        f"{len(pa10_beats_struggle)}/12 instances: {pa10_beats_struggle}",
        "",
        "paper-reported means for reference (from 2006/2008 studies):",
    ]
    for name, row in PAPER_TABLE2.items():
        lines.append(
            f"  {name:12s} struggle={format_float(row.struggle_ga):>12s} "
            f"cma+lth={format_float(row.cma_lth):>12s} "
            f"pa10={format_float(row.pa_cga_10s):>12s} "
            f"pa90={format_float(row.pa_cga_90s):>12s}"
        )
    save_artifact("table2_comparison.txt", "\n".join(lines) + "\n")
    write_csv(
        OUT_DIR / "table2_comparison.csv",
        ["instance", "algorithm", "mean_makespan"],
        [(i, a, m) for (i, a), m in sorted(result.means.items())],
    )
    print("\n" + table)

    # claim 1: PA-CGA beats the panmictic Struggle GA almost everywhere
    wins_vs_struggle = sum(
        result.means[(i, "pa-cga-90s")] < result.means[(i, "struggle-ga")]
        for i in instances
    )
    assert wins_vs_struggle >= 10, f"beat struggle on only {wins_vs_struggle}/12"

    # claim 2: more budget never hurts
    for inst in instances:
        assert (
            result.means[(inst, "pa-cga-90s")]
            <= result.means[(inst, "pa-cga-10s")] * 1.001
        ), inst

    # claim 3: the 1/9-budget PA-CGA already beats the full-budget
    # Struggle GA on a substantial share of instances
    assert len(pa10_beats_struggle) >= 4, pa10_beats_struggle

"""Ablation A5 — sweep-order policies (paper §3.2).

The paper experimented with different sweep orders per block "in hope
of limiting memory contention" and found **no significant
improvement**.  This bench replays that experiment on the simulator:
same budget, three policies, several seeds; the assertion is the
paper's negative result — no policy wins by a meaningful margin.
"""

import numpy as np

from repro.cga import CGAConfig, StopCondition
from repro.cga.sweep import SWEEP_POLICIES
from repro.etc import load_benchmark
from repro.experiments import ascii_table, summarize
from repro.parallel import SimulatedPACGA

from conftest import env_runs, save_artifact

INST = load_benchmark("u_c_hihi.0")
BUDGET = StopCondition(max_evaluations=4000)


def _run():
    n_runs = env_runs(3)
    samples = {}
    for policy in SWEEP_POLICIES:
        bests = []
        for seed in range(n_runs):
            config = CGAConfig(n_threads=3, ls_iterations=5, sweep=policy)
            res = SimulatedPACGA(INST, config, seed=seed, history_stride=10**9).run(
                BUDGET
            )
            bests.append(res.best_fitness)
        samples[policy] = np.array(bests)
    return samples


def test_sweep_policies_equivalent(benchmark):
    """The paper's negative result: sweep order does not matter much."""
    samples = benchmark.pedantic(_run, rounds=1, iterations=1)
    stats = {p: summarize(v) for p, v in samples.items()}
    table = ascii_table(
        ["policy", "mean best", "median", "std"],
        [
            [p, f"{s.mean:,.0f}", f"{s.median:,.0f}", f"{s.std:,.0f}"]
            for p, s in stats.items()
        ],
    )
    save_artifact(
        "ablation_sweep.txt",
        f"A5: sweep policies, u_c_hihi.0, {BUDGET.max_evaluations} evals, "
        f"{len(next(iter(samples.values())))} runs\n\n{table}\n",
    )
    print("\n" + table)
    means = [s.mean for s in stats.values()]
    spread = (max(means) - min(means)) / min(means)
    assert spread < 0.03, f"sweep policies differ by {spread:.1%} — paper found none"

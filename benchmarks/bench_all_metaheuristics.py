"""Extension E8 — the full metaheuristic field at equal budgets.

Every optimizer in this library on three representative instances
(consistent / semi-consistent / inconsistent, all hihi — the regime
the paper says metaheuristics are for), one evaluation budget:
PA-CGA (3 threads), canonical async CGA, cMA+LTH, Struggle GA,
Island GA, Tabu Search and Simulated Annealing, with Min-min as the
constructive floor.

Asserted: every metaheuristic beats its Min-min seed, and a
population-based method with local search holds the top spot
(the literature's consistent finding on these instances).
"""

import numpy as np

from repro.baselines import CMALTH, IslandGA, SimulatedAnnealing, StruggleGA, TabuSearch
from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.etc import load_benchmark
from repro.experiments import ascii_table, format_float
from repro.heuristics import min_min
from repro.parallel import SimulatedPACGA

from conftest import env_runs, save_artifact

INSTANCES = ("u_c_hihi.0", "u_s_hihi.0", "u_i_hihi.0")
BUDGET = StopCondition(max_evaluations=5000)


def _algorithms(inst, seed):
    pa_cfg = CGAConfig(n_threads=3, crossover="tpx", ls_iterations=10)
    return {
        "pa-cga(3t)": lambda: SimulatedPACGA(
            inst, pa_cfg, seed=seed, history_stride=10**9
        ).run(BUDGET),
        "async-cga": lambda: AsyncCGA(
            inst, CGAConfig(ls_iterations=10), rng=seed, record_history=False
        ).run(BUDGET),
        "cma+lth": lambda: CMALTH(inst, rng=seed).run(BUDGET),
        "struggle-ga": lambda: StruggleGA(inst, rng=seed).run(BUDGET),
        "island-ga": lambda: IslandGA(inst, seed=seed).run(BUDGET),
        "tabu": lambda: TabuSearch(inst, rng=seed).run(BUDGET),
        "sa": lambda: SimulatedAnnealing(inst, rng=seed).run(BUDGET),
    }


def _run():
    n_runs = env_runs(2)
    table = {}
    for name in INSTANCES:
        inst = load_benchmark(name)
        mm = min_min(inst).makespan()
        per_alg = {}
        for alg in _algorithms(inst, 0):
            scores = []
            for seed in range(n_runs):
                scores.append(_algorithms(inst, seed)[alg]().best_fitness)
            per_alg[alg] = float(np.mean(scores))
        table[name] = (mm, per_alg)
    return table


def test_all_metaheuristics(benchmark):
    """Everyone beats the seed; an LS-hybrid population method wins."""
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    alg_names = list(next(iter(data.values()))[1])
    rows = []
    for inst, (mm, per_alg) in data.items():
        winner = min(per_alg, key=per_alg.get)
        rows.append(
            [inst, format_float(mm)]
            + [format_float(per_alg[a]) + ("*" if a == winner else "") for a in alg_names]
        )
    table = ascii_table(["instance", "min-min"] + alg_names, rows)
    save_artifact(
        "all_metaheuristics.txt",
        f"E8: all metaheuristics, {BUDGET.max_evaluations} evaluations each\n\n"
        + table
        + "\n",
    )
    print("\n" + table)

    for inst, (mm, per_alg) in data.items():
        for alg, score in per_alg.items():
            assert score <= mm * 1.0001, (inst, alg, score, mm)
        winner = min(per_alg, key=per_alg.get)
        assert winner in ("pa-cga(3t)", "async-cga", "cma+lth", "tabu"), (inst, winner)

"""Figure 5 — recombination operator × local-search depth study.

Regenerates the box-plot samples (opx/5, tpx/5, opx/10, tpx/10 on all
twelve instances, 3 threads) and checks the paper's reading of them:

* tpx/10 has the best (lowest) mean makespan on most instances;
* on every instance, tpx/10's mean is no worse than opx/5's;
* aggregated over instances, tpx/10 beats opx/5 with a significant
  Mann-Whitney test on normalized makespans.

The per-instance mean table and notch intervals land in
benchmarks/out/.
"""

import numpy as np

from repro.etc import instance_names
from repro.experiments import mann_whitney_u, operators_experiment, write_csv
from repro.experiments.operators_study import DEFAULT_VARIANTS, variant_label

from conftest import OUT_DIR, env_runs, env_vtime, save_artifact


def _run():
    return operators_experiment(
        instances=instance_names(),
        variants=DEFAULT_VARIANTS,
        n_threads=3,
        virtual_time=env_vtime(0.3),
        n_runs=env_runs(3),
        seed=5,
    )


def test_fig5_operators(benchmark):
    """Regenerate Figure 5's numbers and check the conclusions (timed once)."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    variants = [variant_label(c, i) for c, i in DEFAULT_VARIANTS]

    # artifact: mean table plus notch intervals per instance/variant
    lines = [
        f"Figure 5 (simulated): 3 threads, virtual_time={result.virtual_time}, "
        f"runs={result.n_runs}",
        "",
        result.table(),
        "",
        "notch intervals (median +/- 1.57*IQR/sqrt(n)):",
    ]
    csv_rows = []
    for inst in result.instances():
        for v in variants:
            s = result.stats(inst, v)
            lines.append(
                f"  {inst:12s} {v:7s} median={s.median:14.1f} "
                f"notch=[{s.notch_lo:14.1f}, {s.notch_hi:14.1f}]"
            )
            csv_rows.append((inst, v, s.mean, s.median, s.notch_lo, s.notch_hi, s.std))
    save_artifact("fig5_operators.txt", "\n".join(lines) + "\n")
    write_csv(
        OUT_DIR / "fig5_operators.csv",
        ["instance", "variant", "mean", "median", "notch_lo", "notch_hi", "std"],
        csv_rows,
    )
    print("\n" + result.table())

    # claim 1: "overall, the tpx recombination operator provides better
    # mean makespan results than opx" — a tpx variant wins most
    # instances (at bench budgets tpx/5 and tpx/10 trade wins, exactly
    # like the paper's "best in most instances, but not in all")
    tpx_wins = sum(result.best_variant(i).startswith("tpx") for i in result.instances())
    assert tpx_wins >= (2 * len(result.instances())) // 3, f"tpx won only {tpx_wins}/12"

    # claim 2: tpx/10 never meaningfully worse than opx/5 (the paper
    # shows significance per instance over 100 runs; at bench-scale run
    # counts we allow small per-instance noise and rely on the pooled
    # test below for the statistical statement)
    for inst in result.instances():
        a = float(result.samples[(inst, "tpx/10")].mean())
        b = float(result.samples[(inst, "opx/5")].mean())
        assert a <= b * 1.05, (inst, a, b)

    # claim 3: pooled over instances (normalized by the per-instance
    # opx/5 mean), tpx/10 < opx/5 with statistical significance
    pooled_a, pooled_b = [], []
    for inst in result.instances():
        scale = float(result.samples[(inst, "opx/5")].mean())
        pooled_a.extend(result.samples[(inst, "tpx/10")] / scale)
        pooled_b.extend(result.samples[(inst, "opx/5")] / scale)
    _, p = mann_whitney_u(pooled_a, pooled_b)
    assert np.mean(pooled_a) < np.mean(pooled_b)
    assert p < 0.05, f"pooled Mann-Whitney p={p}"

    # claim 3b: the paired family test agrees (Wilcoxon over the twelve
    # per-instance means, the modern phrasing of the paper's conclusion)
    family = result.family_significance("tpx/10", "opx/5")
    with open(OUT_DIR / "fig5_operators.txt", "a", encoding="utf-8") as fh:
        fh.write(
            f"\nfamily-level tpx/10 vs opx/5: Wilcoxon p={family['family_p']:.4g}, "
            f"better on {family['a_better_on']}/12 instances, "
            f"Holm-corrected per-instance significance: "
            f"{sum(family['significant'])}/12\n"
        )
    assert family["family_p"] < 0.05
    assert family["a_better_on"] >= 9

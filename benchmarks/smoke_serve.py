#!/usr/bin/env python
"""CI serve smoke test: throughput, crash recovery, graceful drain.

Three phases against a real ``repro serve`` subprocess:

1. **Throughput + backpressure** — fire a burst of small solve jobs at
   the HTTP API and require sustained admission of at least 20
   requests/s; 429 responses must carry ``Retry-After`` and every
   *accepted* job must reach ``done``.
2. **Crash recovery** — submit jobs that ask the (env-gated) fault
   injector to kill their worker mid-run; each must be retried from
   its checkpoint, finish ``done`` with ``resumed: true`` and link a
   postmortem record next to the job file.
3. **Drain/restart** — SIGTERM the server with work in flight; the
   process must exit 0, the in-flight job must be ``parked`` with a
   checkpoint on disk, and a restarted server on the same spool must
   run every unfinished job to ``done``.

Zero lost jobs overall: every job the service ever accepted (202) must
be ``done`` at the end.  Nonzero exit on any violation.

Usage: PYTHONPATH=src python benchmarks/smoke_serve.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

PY = sys.executable
ENV = {**os.environ, "PYTHONPATH": "src", "REPRO_SERVE_FAULT_INJECTION": "1"}

BURST = 60  # phase-1 submissions
MIN_RPS = 20.0  # admission floor the ISSUE requires

FAST_JOB = {
    "problem": "flowshop",
    "instance": "fs8x4.1",
    "engine": "sync",
    "config": {"grid_rows": 4, "grid_cols": 4},
    "budget": {"max_generations": 5},
}
LONG_JOB = {
    "problem": "flowshop",
    "instance": "fs10x5.1",
    "engine": "sync",
    "config": {"grid_rows": 6, "grid_cols": 6, "ls_iterations": 30},
    "budget": {"max_generations": 60},
}


def check(ok: bool, what: str) -> None:
    if not ok:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)


def start_server(spool: Path, workers: int = 2) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            PY, "-m", "repro", "serve",
            "--port", "0", "--workers", str(workers),
            "--spool", str(spool), "--queue-limit", "128",
            "--retry-backoff", "0.1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=ENV,
    )
    port = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "serving on" in line:
            port = int(line.rsplit(":", 1)[1])
            break
        if not line and proc.poll() is not None:
            break
    check(port is not None, "server never reported its listen port")
    return proc, f"http://127.0.0.1:{port}"


def request(base: str, method: str, path: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    def parse(headers, raw):
        if headers.get("Content-Type", "").startswith("application/json"):
            return json.loads(raw)
        return raw.decode("utf-8")

    try:
        with urllib.request.urlopen(req, timeout=15) as resp:
            return resp.status, dict(resp.headers), parse(resp.headers, resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), parse(exc.headers, exc.read())


def wait_states(base: str, ids: list[str], timeout_s: float) -> dict[str, dict]:
    deadline = time.monotonic() + timeout_s
    records: dict[str, dict] = {}
    while time.monotonic() < deadline:
        records = {}
        for jid in ids:
            _, _, rec = request(base, "GET", f"/jobs/{jid}")
            records[jid] = rec
        if all(r.get("state") in ("done", "failed") for r in records.values()):
            break
        time.sleep(0.25)
    return records


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="smoke-serve-"))
    spool = tmp / "spool"
    accepted: list[str] = []

    proc, base = start_server(spool)
    try:
        # -- phase 1: burst admission throughput + zero lost jobs ----------
        t0 = time.monotonic()
        rejected = 0
        for i in range(BURST):
            code, headers, body = request(
                base, "POST", "/jobs", dict(FAST_JOB, seed=i)
            )
            if code == 202:
                accepted.append(body["id"])
            else:
                check(code == 429, f"unexpected admission status {code}")
                check("Retry-After" in headers, "429 without Retry-After header")
                rejected += 1
        elapsed = time.monotonic() - t0
        rps = BURST / elapsed
        print(
            f"phase 1: {BURST} submissions in {elapsed:.2f}s "
            f"({rps:.1f} req/s, {len(accepted)} accepted, {rejected} rejected)"
        )
        check(rps >= MIN_RPS, f"admission rate {rps:.1f} req/s < {MIN_RPS}")
        check(len(accepted) >= BURST // 2, "queue rejected most of the burst")

        records = wait_states(base, accepted, timeout_s=120)
        lost = [j for j, r in records.items() if r.get("state") != "done"]
        check(not lost, f"phase 1 lost jobs: {lost}")
        print(f"phase 1: all {len(accepted)} accepted jobs done")

        # -- phase 2: injected worker crash -> retry from checkpoint -------
        crash_ids = []
        for i in range(3):
            code, _, body = request(
                base,
                "POST",
                "/jobs",
                dict(
                    FAST_JOB,
                    seed=100 + i,
                    budget={"max_generations": 8},
                    inject={"crash_after_generations": 3, "crash_attempts": 1},
                ),
            )
            check(code == 202, f"crash job rejected with {code}")
            crash_ids.append(body["id"])
        accepted.extend(crash_ids)
        records = wait_states(base, crash_ids, timeout_s=120)
        for jid in crash_ids:
            rec = records[jid]
            check(rec.get("state") == "done", f"crash job {jid}: {rec.get('state')}")
            check(rec.get("resumed") is True, f"crash job {jid} did not resume")
            check(rec.get("attempts") == 2, f"crash job {jid} attempts {rec.get('attempts')}")
            pm = rec.get("postmortem")
            check(pm is not None and Path(pm).is_file(), f"crash job {jid} has no postmortem")
        print(f"phase 2: {len(crash_ids)} crashed workers retried to done (postmortems linked)")

        # -- phase 3: SIGTERM drain with work in flight --------------------
        code, _, body = request(base, "POST", "/jobs", LONG_JOB)
        check(code == 202, "long job rejected")
        long_id = body["id"]
        accepted.append(long_id)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, _, rec = request(base, "GET", f"/jobs/{long_id}")
            if (rec.get("progress") or {}).get("generation", 0) >= 2:
                break
            time.sleep(0.1)
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        check(rc == 0, f"drain exit code {rc}, expected 0")
        record = json.loads((spool / "jobs" / f"{long_id}.json").read_text())
        check(record["state"] == "parked", f"drained job state {record['state']}")
        check(
            (spool / "checkpoints" / f"{long_id}.ckpt").is_file(),
            "drained job has no checkpoint",
        )
        print("phase 3: SIGTERM drained cleanly (exit 0, in-flight job parked)")
    finally:
        if proc.poll() is None:
            proc.kill()

    # -- phase 3b: restart resumes the spool to completion -----------------
    proc, base = start_server(spool)
    try:
        records = wait_states(base, accepted, timeout_s=180)
        lost = [j for j, r in records.items() if r.get("state") != "done"]
        check(not lost, f"jobs lost across restart: {lost}")
        _, _, rec = request(base, "GET", f"/jobs/{long_id}")
        check(rec["resumed"] is True, "parked job restarted from scratch")
        check(
            rec["result"]["generations"] == LONG_JOB["budget"]["max_generations"],
            "parked job did not complete its budget",
        )
        _, headers, _ = request(base, "GET", "/metrics")
        check(
            headers.get("Content-Type", "").startswith("application/openmetrics-text"),
            "metrics endpoint content type",
        )
        proc.send_signal(signal.SIGTERM)
        check(proc.wait(timeout=60) == 0, "final drain exit code")
    finally:
        if proc.poll() is None:
            proc.kill()

    print(
        f"OK: {len(accepted)} accepted jobs, zero lost "
        "(burst + crash retries + drain/restart)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

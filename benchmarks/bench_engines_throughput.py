"""Throughput of every execution engine (evaluations per second).

Not a paper artifact, but the measurement that grounds the whole
reproduction: it shows where the GIL leaves the thread engine, what the
process engine costs in locking, and how fast the simulator replays
virtual time.  Results land in benchmarks/out/engines_throughput.txt.
"""

import pytest

from repro import (
    AsyncCGA,
    CGAConfig,
    ProcessPACGA,
    SimulatedPACGA,
    StopCondition,
    ThreadedPACGA,
    load_benchmark,
)

from conftest import save_artifact

INST = load_benchmark("u_c_hihi.0")
CFG = CGAConfig(ls_iterations=5)
BUDGET = StopCondition(max_evaluations=2560)

_results: dict[str, float] = {}


def _throughput(engine) -> float:
    res = engine.run(BUDGET)
    return res.evaluations / res.elapsed_s


@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_threaded_engine(benchmark, n_threads):
    rate = benchmark.pedantic(
        lambda: _throughput(ThreadedPACGA(INST, CFG.with_(n_threads=n_threads), seed=0)),
        rounds=1,
        iterations=1,
    )
    _results[f"threads({n_threads})"] = rate


@pytest.mark.parametrize("n_threads", [1, 2])
def test_process_engine(benchmark, n_threads):
    rate = benchmark.pedantic(
        lambda: _throughput(ProcessPACGA(INST, CFG.with_(n_threads=n_threads), seed=0)),
        rounds=1,
        iterations=1,
    )
    _results[f"processes({n_threads})"] = rate


def test_sequential_engine(benchmark):
    rate = benchmark.pedantic(
        lambda: _throughput(AsyncCGA(INST, CFG, rng=0, record_history=False)),
        rounds=1,
        iterations=1,
    )
    _results["async(1)"] = rate


def test_simulated_engine_and_report(benchmark):
    rate = benchmark.pedantic(
        lambda: _throughput(
            SimulatedPACGA(INST, CFG.with_(n_threads=3), seed=0, history_stride=10**9)
        ),
        rounds=1,
        iterations=1,
    )
    _results["simulated(3)"] = rate
    lines = ["engine throughput (evaluations/second, 2560-eval runs):"]
    for name, r in sorted(_results.items()):
        lines.append(f"  {name:14s} {r:>10,.0f}")
    lines.append(
        "\nNote: this container exposes one CPU core and CPython holds the"
        "\nGIL through the breeding loop, so thread/process counts cannot"
        "\nshow real speedup here — that is exactly why Fig. 4 is"
        "\nregenerated on the virtual-time simulator (DESIGN.md §4.2)."
    )
    save_artifact("engines_throughput.txt", "\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))
    assert rate > 0

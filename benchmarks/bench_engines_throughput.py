"""Throughput of every execution engine (evaluations per second).

Not a paper artifact, but the measurement that grounds the whole
reproduction: it shows where the GIL leaves the thread engine, what the
process engine costs in locking, how fast the simulator replays
virtual time, and what the batch-kernel engine buys over the scalar
breeding loop.  Results land in benchmarks/out/engines_throughput.txt
and — machine-readable, for tracking the perf trajectory across PRs —
in BENCH_throughput.json at the repository root.
"""

import json
import os
from pathlib import Path

import pytest

from repro import (
    AsyncCGA,
    CGAConfig,
    ProcessPACGA,
    ShmBlockPACGA,
    SimulatedPACGA,
    StopCondition,
    ThreadedPACGA,
    VectorizedSyncCGA,
    load_benchmark,
)

from conftest import save_artifact

INSTANCE_NAME = "u_c_hihi.0"
INST = load_benchmark(INSTANCE_NAME)
CFG = CGAConfig(ls_iterations=5)
BUDGET = StopCondition(max_evaluations=2560)
#: the vectorized engine finishes 2560 evals in a few ms, too short to
#: time reliably — give it a budget long enough to amortize startup.
VECTORIZED_BUDGET = StopCondition(max_evaluations=256 * 400)

REPO_ROOT = Path(__file__).resolve().parent.parent

_results: dict[str, float] = {}
#: best makespan per engine at the same budget — `repro obs check` gates
#: future runs against these (quality_makespan in BENCH_throughput.json)
_quality: dict[str, float] = {}


def _throughput(key: str, engine, budget: StopCondition = BUDGET) -> float:
    res = engine.run(budget)
    _quality[key] = res.best_fitness
    return res.evaluations / res.elapsed_s


def _best_of(n: int, make_engine, key: str, budget: StopCondition = BUDGET) -> float:
    """Best rate over ``n`` fresh runs — the box is noisy and a single
    0.2 s scalar run can read 30% low under transient load."""
    return max(_throughput(key, make_engine(), budget) for _ in range(n))


@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_threaded_engine(benchmark, n_threads):
    key = f"threads({n_threads})"
    rate = benchmark.pedantic(
        lambda: _best_of(
            3, lambda: ThreadedPACGA(INST, CFG.with_(n_threads=n_threads), seed=0), key
        ),
        rounds=1,
        iterations=1,
    )
    _results[key] = rate


@pytest.mark.parametrize("n_threads", [1, 2])
def test_process_engine(benchmark, n_threads):
    key = f"processes({n_threads})"
    rate = benchmark.pedantic(
        lambda: _best_of(
            3, lambda: ProcessPACGA(INST, CFG.with_(n_threads=n_threads), seed=0), key
        ),
        rounds=1,
        iterations=1,
    )
    _results[key] = rate


def test_shm_engine_family(benchmark):
    """Shared-memory block engine: batch kernels per forked worker.

    Same long budget as the vectorized engine (its per-block sweeps are
    batch kernels too), best of five, and the worker counts are
    *interleaved* round-robin within one test: the ``shm(N)/shm(1)``
    ratios in ``parallel_speedup`` are gated downstream, and measuring
    the configs minutes apart would let background-load drift corrupt
    the ratio even when the underlying rates are identical.
    """
    counts = (1, 2, 4)

    def run_family() -> float:
        rates = dict.fromkeys(counts, 0.0)
        for _ in range(5):
            for n in counts:
                rates[n] = max(
                    rates[n],
                    _throughput(
                        f"shm({n})",
                        ShmBlockPACGA(INST, CFG.with_(n_threads=n), seed=0),
                        VECTORIZED_BUDGET,
                    ),
                )
        for n, r in rates.items():
            _results[f"shm({n})"] = r
        return rates[1]

    benchmark.pedantic(run_family, rounds=1, iterations=1)


def test_sequential_engine(benchmark):
    rate = benchmark.pedantic(
        lambda: _best_of(
            3, lambda: AsyncCGA(INST, CFG, rng=0, record_history=False), "async(1)"
        ),
        rounds=1,
        iterations=1,
    )
    _results["async(1)"] = rate


def test_vectorized_engine(benchmark):
    """Batch-kernel engine: best of three runs (the box is noisy)."""
    rate = benchmark.pedantic(
        lambda: max(
            _throughput(
                "vectorized(1)",
                VectorizedSyncCGA(INST, CFG, rng=0, record_history=False),
                VECTORIZED_BUDGET,
            )
            for _ in range(3)
        ),
        rounds=1,
        iterations=1,
    )
    _results["vectorized(1)"] = rate


def test_simulated_engine_and_report(benchmark):
    rate = benchmark.pedantic(
        lambda: _best_of(
            3,
            lambda: SimulatedPACGA(
                INST, CFG.with_(n_threads=3), seed=0, history_stride=10**9
            ),
            "simulated(3)",
        ),
        rounds=1,
        iterations=1,
    )
    _results["simulated(3)"] = rate
    lines = ["engine throughput (evaluations/second, 2560-eval runs):"]
    for name, r in sorted(_results.items()):
        lines.append(f"  {name:14s} {r:>10,.0f}")
    if "async(1)" in _results and "vectorized(1)" in _results:
        ratio = _results["vectorized(1)"] / _results["async(1)"]
        lines.append(f"\nvectorized / async speedup: {ratio:.1f}x")
    # multi-worker scaling ratios per engine family — the obs check
    # gate (`--min-parallel-speedup`) reads this section
    speedup: dict[str, float] = {}
    for family in ("shm", "processes", "threads"):
        base = _results.get(f"{family}(1)")
        if not base:
            continue
        for key, r in _results.items():
            if key.startswith(f"{family}(") and key != f"{family}(1)":
                speedup[f"{key}/{family}(1)"] = round(r / base, 3)
    if speedup:
        lines.append("\nparallel speedup (n workers vs 1, same engine):")
        for key, ratio in sorted(speedup.items()):
            lines.append(f"  {key:26s} {ratio:>6.2f}x")
    lines.append(
        f"\nNote: this container exposes {os.cpu_count()} CPU core(s)."
        "\nOn a single core no engine can show a real multi-worker"
        "\nspeedup — workers timeslice the one core — so the"
        "\nparallel_speedup ratios above are honest single-core numbers;"
        "\nCI re-measures them on a multicore runner"
        "\n(benchmarks/smoke_shm_speedup.py).  That is also why Fig. 4 is"
        "\nregenerated on the virtual-time simulator (DESIGN.md §4.2)."
        "\nThe shm engine is the parallel fast path: batch kernels per"
        "\nforked worker over a zero-copy shared population.  Workers"
        "\nbeyond the core count collapse into fused-batch processes"
        "\n(DESIGN.md, 'Worker collapse'), so shm(N) stays at shm(1)"
        "\nthroughput instead of paying N× per-sweep kernel dispatch."
    )
    save_artifact("engines_throughput.txt", "\n".join(lines) + "\n")
    payload = {
        "instance": INSTANCE_NAME,
        "ntasks": INST.ntasks,
        "nmachines": INST.nmachines,
        "pop_size": CFG.population_size,
        "ls_iterations": CFG.ls_iterations,
        "budget_evaluations": BUDGET.max_evaluations,
        "vectorized_budget_evaluations": VECTORIZED_BUDGET.max_evaluations,
        "engines_evals_per_s": {k: round(v, 1) for k, v in sorted(_results.items())},
        "quality_makespan": {k: round(v, 1) for k, v in sorted(_quality.items())},
        "parallel_speedup": dict(sorted(speedup.items())),
        "cpu_count": os.cpu_count(),
    }
    (REPO_ROOT / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print("\n" + "\n".join(lines))
    assert rate > 0

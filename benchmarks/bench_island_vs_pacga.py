"""Extension E6 — shared-memory blocks vs distributed islands.

The paper motivates PA-CGA by contrast with cluster parallelizations of
cGAs ([4], [5]): islands exchange individuals through sparse explicit
migration, while PA-CGA's blocks stay coupled through overlapping
neighborhoods.  At equal evaluation budgets and equal total population
(4 islands × 8×8 vs one 16×16 PA-CGA with 4 logical threads), the
asserted claim is the structural one:

* the island model retains more *global* genotypic diversity — its
  subpopulations only exchange single elites, so between-island
  variance persists.

Convergence speed is recorded, not asserted: 64-cell islands have
higher selection intensity than one 256-cell torus, so they converge
faster at short budgets, while PA-CGA's single coupled population
avoids the islands' duplicated search at long budgets — the classic
coarse/fine-grained trade, budget-dependent by nature.
"""

import numpy as np

from repro.baselines.island_ga import IslandGA
from repro.cga import CGAConfig, StopCondition
from repro.cga.diversity import hamming_diversity
from repro.cga.grid import Grid2D
from repro.cga.population import Population
from repro.etc import load_benchmark
from repro.experiments import ascii_table
from repro.parallel import SimulatedPACGA

from conftest import env_runs, save_artifact

INST = load_benchmark("u_i_hihi.0")
BUDGET = StopCondition(max_evaluations=5000)
ISLAND_CFG = CGAConfig(grid_rows=8, grid_cols=8, ls_iterations=5, seed_with_minmin=False)
PACGA_CFG = CGAConfig(
    grid_rows=16, grid_cols=16, n_threads=4, ls_iterations=5, seed_with_minmin=False
)


def _island_global_diversity(ga: IslandGA) -> float:
    """Hamming diversity over the union of all islands."""
    union = Population(INST, Grid2D(16, 16))
    stacked = np.vstack([pop.s for pop in ga.islands])
    union.s[:] = stacked
    union.evaluate_all()
    return hamming_diversity(union)


def _run():
    n_runs = env_runs(3)
    rows = {"island-ga": [], "pa-cga": []}
    for seed in range(n_runs):
        ga = IslandGA(
            INST, n_islands=4, island_config=ISLAND_CFG, migration_interval=5, seed=seed
        )
        res_i = ga.run(BUDGET)
        rows["island-ga"].append(
            (res_i.best_fitness, _island_global_diversity(ga), res_i.history[-1][3])
        )
        sim = SimulatedPACGA(INST, PACGA_CFG, seed=seed, history_stride=10**9)
        res_p = sim.run(BUDGET)
        rows["pa-cga"].append(
            (res_p.best_fitness, hamming_diversity(sim.pop), float(sim.pop.mean_fitness()))
        )
    return rows


def test_island_vs_pacga(benchmark):
    """Diversity and convergence trade between the two architectures."""
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    summary = {}
    for name, triples in rows.items():
        best = np.mean([t[0] for t in triples])
        div = np.mean([t[1] for t in triples])
        mean_fit = np.mean([t[2] for t in triples])
        summary[name] = (best, div, mean_fit)
    table = ascii_table(
        ["architecture", "mean best", "hamming diversity", "population mean"],
        [
            [name, f"{v[0]:,.0f}", f"{v[1]:.3f}", f"{v[2]:,.0f}"]
            for name, v in summary.items()
        ],
    )
    save_artifact(
        "island_vs_pacga.txt",
        f"E6: islands vs shared-memory blocks, u_i_hihi.0, "
        f"{BUDGET.max_evaluations} evals, equal total population (256)\n\n"
        + table
        + "\n\nConvergence speed is budget-dependent (small islands have higher"
        "\nselection intensity early; the coupled torus avoids duplicated"
        "\nsearch late) — recorded here, asserted nowhere.\n",
    )
    print("\n" + table)

    # the structural claim: islands keep more global diversity
    assert summary["island-ga"][1] > summary["pa-cga"][1]
    # both architectures must actually be optimizing (sanity floor)
    assert summary["island-ga"][0] < 25_000_000
    assert summary["pa-cga"][0] < 25_000_000

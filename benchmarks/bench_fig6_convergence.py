"""Figure 6 — evolution of the mean population makespan (u_c_hihi.0).

Regenerates the four convergence curves (1–4 threads, fixed virtual
wall-time) and checks what the paper reads off the figure:

* one thread evolves for fewer generations in the allotted time;
* three threads find the best final solutions;
* four threads do not end best.

The paper additionally reads "1 thread finds worse average makespan at
any generation" off the figure.  That per-generation ordering does NOT
reproduce in this implementation (the single-thread line sweep
propagates the Min-min seed slightly *faster* per generation; the
parallel advantage here comes entirely from doing more generations in
the same time) — the bench measures and records the observation instead
of asserting it; see EXPERIMENTS.md for the discussion.

Curves (as sparklines and CSV series) land in benchmarks/out/.
"""

import numpy as np

from repro.experiments import convergence_experiment, write_csv

from conftest import OUT_DIR, env_runs, env_vtime, save_artifact


def _run():
    return convergence_experiment(
        instance="u_c_hihi.0",
        thread_counts=(1, 2, 3, 4),
        virtual_time=env_vtime(0.5),
        n_runs=env_runs(3),
        seed=23,
        grid_points=48,
    )


def test_fig6_convergence(benchmark):
    """Regenerate Figure 6 and check its reading (timed once)."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"Figure 6 (simulated): {result.instance}, virtual_time={result.virtual_time}, "
        f"runs={result.n_runs}",
        "",
        "mean population makespan vs generations (sparklines, common grid):",
    ]
    for n in sorted(result.curves):
        lines.append(
            f"  {n} thread(s): {result.sparkline(n)}  "
            f"final={result.final_mean[n]:,.0f} "
            f"gens_reached={result.generations_reached[n]:.0f}"
        )
    save_artifact("fig6_convergence.txt", "\n".join(lines) + "\n")
    write_csv(
        OUT_DIR / "fig6_convergence.csv",
        ["generation"] + [f"mean_makespan_{n}t" for n in sorted(result.curves)],
        [
            [g] + [result.curves[n][i] for n in sorted(result.curves)]
            for i, g in enumerate(result.generations)
        ],
    )
    print("\n" + "\n".join(lines))

    # claim 1: one thread completes the fewest generations in the budget
    gens = result.generations_reached
    assert gens[1] == min(gens.values()), gens

    # claim 2 (paper): one thread worst at any generation.  Does not
    # reproduce here — record the measured per-generation dominance
    # fraction in the artifact instead of asserting (EXPERIMENTS.md F6).
    tail = slice(len(result.generations) // 4, None)
    one = result.curves[1][tail]
    dominance = {
        n: float(np.mean(one >= result.curves[n][tail] - 1e-9)) for n in (2, 3, 4)
    }
    with open(OUT_DIR / "fig6_convergence.txt", "a", encoding="utf-8") as fh:
        fh.write(
            "\npaper claim 2 check (fraction of common-grid tail where the "
            f"1-thread curve is worse): {dominance}\n"
        )

    # claim 3: three threads end best (on final mean makespan)
    finals = result.final_mean
    assert finals[3] == min(finals.values()), finals

    # claim 4 (final part): four threads do not end best
    assert finals[4] >= finals[3]

"""Extension E9 — robustness of the Fig. 4 reproduction.

Perturbs every cost-model constant over 0.5×–2× and re-evaluates the
four Fig. 4 claims in closed form.  Asserted: the speedup/plateau/LS
claims survive *every* perturbation, and the 0-iteration slowdown
claim breaks only in the physically expected directions (cheaper
contention or dearer computation) — i.e. the reproduction argues from
mechanisms, not from one lucky calibration.
"""

from repro.experiments.sensitivity import sensitivity_analysis

from conftest import save_artifact


def _run():
    return sensitivity_analysis()


def test_cost_model_sensitivity(benchmark):
    """Claim survival across the calibration neighborhood."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    rates = {
        c: result.survival_rate(c)
        for c in ("C1_slowdown", "C2_speedup", "C3_plateau", "C4_ls_helps")
    }
    lines = [
        "E9: Fig. 4 claim survival under cost-model perturbation (x0.5..x2)",
        "",
        result.table(),
        "",
        "survival rates: " + ", ".join(f"{c}={100 * r:.0f}%" for c, r in rates.items()),
        "fragile settings: " + str(result.fragile_settings()),
    ]
    save_artifact("sensitivity.txt", "\n".join(lines) + "\n")
    print("\n" + lines[0] + "\n" + lines[4] + "\n" + lines[5])

    assert rates["C2_speedup"] == 1.0
    assert rates["C3_plateau"] == 1.0
    assert rates["C4_ls_helps"] == 1.0
    assert rates["C1_slowdown"] >= 0.8
    for param, mult, claim in result.fragile_settings():
        assert claim == "C1_slowdown"
        assert (param == "t_boundary" and mult < 1.0) or mult > 1.0

"""Ablation A8 — steady-state replacement operators (ref [19]).

The Struggle GA row of Table 2 comes from Xhafa's study of GA
*replacement operators* for grid scheduling.  This bench replays the
core of that study: the same steady-state GA under struggle
(similarity-based), replace-worst and replace-random policies,
comparing solution quality and final population diversity.

Expected (and asserted): struggle preserves the most diversity;
replace-worst is the greediest.  Quality ordering at small budgets is
recorded, not asserted (it flips with budget, as in the original
study).
"""

import numpy as np

from repro.baselines import StruggleGA
from repro.cga import StopCondition
from repro.etc import load_benchmark
from repro.experiments import ascii_table

from conftest import env_runs, save_artifact

INST = load_benchmark("u_i_hihi.0")
BUDGET = StopCondition(max_evaluations=4000)


def _population_diversity(ga: StruggleGA) -> float:
    rng = np.random.default_rng(0)
    a = rng.integers(0, ga.pop_size, 400)
    b = rng.integers(0, ga.pop_size, 400)
    mask = a != b
    return float((ga.s[a[mask]] != ga.s[b[mask]]).mean())


def _run():
    n_runs = env_runs(3)
    out = {}
    for policy in StruggleGA.REPLACEMENTS:
        bests, divs = [], []
        for seed in range(n_runs):
            ga = StruggleGA(
                INST, pop_size=64, replacement=policy, seed_with_minmin=False, rng=seed
            )
            res = ga.run(BUDGET)
            bests.append(res.best_fitness)
            divs.append(_population_diversity(ga))
        out[policy] = (float(np.mean(bests)), float(np.mean(divs)))
    return out


def test_replacement_operators(benchmark):
    """Struggle replacement must keep the most diversity."""
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = ascii_table(
        ["replacement", "mean best", "final diversity"],
        [[k, f"{v[0]:,.0f}", f"{v[1]:.3f}"] for k, v in out.items()],
    )
    save_artifact(
        "ablation_replacement.txt",
        f"A8: steady-state replacement operators (ref [19]), u_i_hihi.0, "
        f"{BUDGET.max_evaluations} evals\n\n" + table + "\n",
    )
    print("\n" + table)

    assert out["struggle"][1] > out["worst"][1]
    assert out["struggle"][1] > out["random"][1]

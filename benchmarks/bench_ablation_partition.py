"""Ablation A6 — partition geometry at scale (future-work direction).

The paper partitions the population into contiguous row-major runs and
observes the boundary fraction limiting speedup beyond 3 threads; its
future work targets many-core processors.  This bench compares the
run-based partition against whole-row blocks and rectangular tiles:
boundary fraction and model-predicted speedup per thread count, plus a
measured simulator run at 16 threads.
"""

from repro.cga import CGAConfig, Grid2D, StopCondition, neighbor_table
from repro.etc import load_benchmark
from repro.experiments import ascii_table
from repro.parallel import SimulatedPACGA, XEON_E5440

from conftest import save_artifact

INST = load_benchmark("u_c_hihi.0")
GRID = Grid2D(16, 16)
TBL = neighbor_table(GRID, "l5")
SCHEMES = ("runs", "rows", "tiles")


def _run():
    rows = []
    for scheme in SCHEMES:
        fractions = {}
        predicted = {}
        for n in (2, 4, 8, 16):
            blocks = GRID.partition_scheme(n, scheme)
            bf = GRID.boundary_fraction_of(blocks, TBL)
            fractions[n] = bf
            predicted[n] = XEON_E5440.predicted_speedup(n, 10, bf)
        # measured evaluations at 16 logical threads, fixed virtual time
        config = CGAConfig(n_threads=16, ls_iterations=10, partition=scheme)
        res = SimulatedPACGA(INST, config, seed=0, history_stride=10**9).run(
            StopCondition(virtual_time=0.25)
        )
        rows.append((scheme, fractions, predicted, res.evaluations))
    return rows


def test_partition_geometry(benchmark):
    """Tiles must dominate runs on boundary traffic at high counts."""
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = ascii_table(
        ["scheme", "bf@4", "bf@16", "model speedup@4", "model speedup@16", "evals@16t"],
        [
            [
                scheme,
                f"{fr[4]:.2f}",
                f"{fr[16]:.2f}",
                f"{sp[4]:.2f}x",
                f"{sp[16]:.2f}x",
                f"{evals:,}",
            ]
            for scheme, fr, sp, evals in rows
        ],
    )
    save_artifact(
        "ablation_partition.txt",
        "A6: partition geometry on a 16x16 population, L5 neighborhood\n\n"
        + table
        + "\n\nTiles cut cross-block traffic versus the paper's contiguous"
        "\nruns as thread counts grow — the lever the future-work section"
        "\npoints at for many-core targets.\n",
    )
    print("\n" + table)

    by_scheme = {scheme: (fr, sp, evals) for scheme, fr, sp, evals in rows}
    # at 16 threads tiles must beat runs on both traffic and throughput
    assert by_scheme["tiles"][0][16] < by_scheme["runs"][0][16]
    assert by_scheme["tiles"][2] > by_scheme["runs"][2]
    # at the paper's scale (<= 4 threads) the difference is minor: the
    # paper's run-based choice costs little there
    assert by_scheme["runs"][0][4] <= by_scheme["tiles"][0][4] * 1.5 + 0.05

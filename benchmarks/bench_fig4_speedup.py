"""Figure 4 — speedup of PA-CGA vs threads and local-search depth.

Regenerates the four Fig. 4 series (0/1/5/10 H2LL iterations, 1–4
threads) under the virtual-time simulator, prints the same grid of
numbers the paper plots, saves it to benchmarks/out/, and asserts the
paper's qualitative claims:

* 0 iterations: evaluations *decrease* with the number of threads;
* 5 and 10 iterations: positive speedup, no further gain from 3 to 4
  threads;
* 3 threads reach the maximum number of evaluations (the setting the
  paper adopts for all further studies).
"""

from repro.experiments import speedup_experiment, write_csv

from conftest import OUT_DIR, env_runs, env_vtime, save_artifact


def _run():
    return speedup_experiment(
        instance="u_c_hihi.0",
        thread_counts=(1, 2, 3, 4),
        ls_iterations=(0, 1, 5, 10),
        virtual_time=env_vtime(0.5),
        n_runs=env_runs(2),
        seed=1,
    )


def test_fig4_speedup(benchmark):
    """Regenerate Figure 4 and check its shape (timed once)."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = result.table()
    lines = [
        f"Figure 4 (simulated): instance={result.instance}, "
        f"virtual_time={result.virtual_time}, runs={result.n_runs}",
        "",
        table,
        "",
        "boundary fractions: "
        + ", ".join(
            f"{n}t={f:.3f}" for n, f in sorted(result.boundary_fractions.items())
        ),
    ]
    save_artifact("fig4_speedup.txt", "\n".join(lines) + "\n")
    write_csv(
        OUT_DIR / "fig4_speedup.csv",
        ["ls_iterations", "threads", "mean_evaluations", "speedup_percent"],
        [
            (it, n, result.mean_evaluations[(it, n)], result.speedup_percent(it, n))
            for (it, n) in sorted(result.mean_evaluations)
        ],
    )
    print("\n" + "\n".join(lines))

    # claim 1: without local search, threads only add synchronization
    s0 = [result.speedup_percent(0, n) for n in (1, 2, 3, 4)]
    assert s0[1] < 100.0 and s0[2] < s0[1] and s0[3] < s0[2], s0

    # claim 2: with 5/10 LS iterations, speedup is positive and grows to 3
    for iters in (5, 10):
        assert result.speedup_percent(iters, 2) > 110.0
        assert result.speedup_percent(iters, 3) > result.speedup_percent(iters, 2)

    # claim 3: no meaningful gain from the 4th thread
    for iters in (5, 10):
        assert result.speedup_percent(iters, 4) <= result.speedup_percent(iters, 3) * 1.05

    # claim 4: 3 threads maximize evaluations at 10 LS iterations
    evals10 = {n: result.mean_evaluations[(10, n)] for n in (1, 2, 3, 4)}
    assert max(evals10, key=evals10.get) == 3

"""Ablation A4 — neighborhood shape.

The paper picks L5 "to reduce concurrent memory access" (§4.1).  This
bench quantifies both sides of that trade:

* synchronization side: the fraction of individuals whose neighborhood
  crosses a block boundary, per shape and thread count (more crossing
  = more lock contention);
* search side: best makespan at a fixed evaluation budget per shape.
"""

import numpy as np

from repro.cga import CGAConfig, Grid2D, StopCondition, neighbor_table
from repro.etc import load_benchmark
from repro.experiments import ascii_table
from repro.parallel import SimulatedPACGA

from conftest import env_runs, save_artifact

INST = load_benchmark("u_i_hihi.0")
SHAPES = ("l5", "c9", "l9", "c13")


def _run():
    n_runs = env_runs(2)
    grid = Grid2D(16, 16)
    rows = []
    for shape in SHAPES:
        tbl = neighbor_table(grid, shape)
        crossing = {n: grid.boundary_fraction(n, tbl) for n in (2, 3, 4)}
        bests = []
        for seed in range(n_runs):
            config = CGAConfig(neighborhood=shape, n_threads=3, ls_iterations=5)
            res = SimulatedPACGA(INST, config, seed=seed, history_stride=10**9).run(
                StopCondition(max_evaluations=4000)
            )
            bests.append(res.best_fitness)
        rows.append((shape, crossing, float(np.mean(bests))))
    return rows


def test_neighborhood_tradeoff(benchmark):
    """Boundary crossing vs quality per shape (timed once)."""
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = ascii_table(
        ["shape", "cross@2t", "cross@3t", "cross@4t", "mean best (4000 evals)"],
        [
            [
                shape,
                f"{crossing[2]:.2f}",
                f"{crossing[3]:.2f}",
                f"{crossing[4]:.2f}",
                f"{best:,.0f}",
            ]
            for shape, crossing, best in rows
        ],
    )
    save_artifact(
        "ablation_neighborhood.txt",
        "A4: neighborhood shape trade-off, u_i_hihi.0, 3 threads\n\n" + table + "\n",
    )
    print("\n" + table)

    crossing_by_shape = {shape: crossing for shape, crossing, _ in rows}
    # the paper's argument: L5 minimizes cross-boundary traffic at every
    # thread count among the classical shapes
    for other in ("c9", "l9", "c13"):
        for n in (2, 3, 4):
            assert crossing_by_shape["l5"][n] <= crossing_by_shape[other][n], (other, n)

"""CI smoke: shm engine multi-worker speedup floor.

The committed ``BENCH_throughput.json`` is produced wherever the repo
is developed — possibly a single-core container where no engine can
show a real multi-worker speedup.  This script *re-measures* the shm
engine fresh on the machine it runs on (CI's multicore runner), writes
a bench-shaped payload with a ``parallel_speedup`` section, and
enforces the floor: ``shm(N)`` must not be slower than ``shm(1)``.

On a single-core machine the floor is reported but not enforced
(exit 0 with an honest note) — timesliced workers plus narrower
per-worker batch kernels cannot win there by construction.

Usage::

    PYTHONPATH=src python benchmarks/smoke_shm_speedup.py \
        --workers 2 --evals 51200 --floor 1.0 --out out/shm_smoke.json

The payload also feeds ``repro obs check <out> --baseline
BENCH_throughput.json --min-parallel-speedup 1.0`` — the check prefers
a ``parallel_speedup`` section on the run side, so CI gates the fresh
measurement, not the committed single-core numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro import CGAConfig, ShmBlockPACGA, StopCondition, load_benchmark

INSTANCE_NAME = "u_c_hihi.0"


def measure(inst, n_workers: int, evals: int, repeats: int = 3) -> float:
    """Best-of-N evals/s for a fresh free-running shm engine."""
    cfg = CGAConfig(ls_iterations=5, n_threads=n_workers)
    best = 0.0
    for _ in range(repeats):
        eng = ShmBlockPACGA(inst, cfg, seed=0)
        res = eng.run(StopCondition(max_evaluations=evals))
        best = max(best, res.evaluations / res.elapsed_s)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workers", type=int, default=2, help="worker count to compare to 1")
    ap.add_argument("--evals", type=int, default=51200, help="evaluation budget per run")
    ap.add_argument("--repeats", type=int, default=3, help="runs per config (best kept)")
    ap.add_argument("--floor", type=float, default=1.0, help="minimum shm(N)/shm(1) ratio")
    ap.add_argument("--out", default=None, help="write the bench-shaped payload here")
    args = ap.parse_args(argv)

    inst = load_benchmark(INSTANCE_NAME)
    cores = os.cpu_count() or 1
    base = measure(inst, 1, args.evals, args.repeats)
    multi = measure(inst, args.workers, args.evals, args.repeats)
    key = f"shm({args.workers})/shm(1)"
    ratio = multi / base

    payload = {
        "run_id": f"shm-smoke-x{args.workers}",
        "instance": INSTANCE_NAME,
        # engine/n_threads let `repro obs check` resolve this payload
        # against the committed bench file's shm(N) entry
        "engine": "shm",
        "n_threads": args.workers,
        "cpu_count": cores,
        "budget_evaluations": args.evals,
        "engines_evals_per_s": {
            "shm(1)": round(base, 1),
            f"shm({args.workers})": round(multi, 1),
        },
        "parallel_speedup": {key: round(ratio, 3)},
    }
    print(f"shm(1)            : {base:>10,.0f} evals/s")
    print(f"shm({args.workers})            : {multi:>10,.0f} evals/s")
    print(f"{key} : {ratio:.3f}  (floor {args.floor:g}, {cores} core(s))")
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"payload written to {out}")

    if ratio < args.floor:
        if cores < 2:
            print(
                "NOTE: single-core machine — workers timeslice one core, the "
                "floor is reported but not enforced here (CI enforces it on "
                "a multicore runner)."
            )
            return 0
        print(
            f"FAIL: {key} = {ratio:.3f} < floor {args.floor:g} on a "
            f"{cores}-core machine",
            file=sys.stderr,
        )
        return 1
    print("OK: speedup floor satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

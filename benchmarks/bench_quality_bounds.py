"""Extension E2 — absolute quality against the LP lower bound.

The paper never reports optimality gaps; this bench adds the missing
yardstick.  For every benchmark instance it computes the R‖Cmax LP
relaxation bound, the Min-min seed and PA-CGA's result at a fixed
budget, and asserts that PA-CGA (a) improves on its seed everywhere
and (b) lands within a sane factor of the fractional optimum.
"""

from repro.experiments import quality_experiment

from conftest import save_artifact


def _run():
    return quality_experiment(max_evaluations=8000, seed=3)


def test_quality_vs_lp_bound(benchmark):
    """Optimality gaps across the twelve instances (timed once)."""
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = result.table()
    save_artifact(
        "quality_bounds.txt",
        f"E2: quality vs LP relaxation, {result.budget_evaluations} evaluations\n\n"
        + table
        + f"\n\nmean PA-CGA gap above LP: {100 * result.mean_gap():.2f}%\n",
    )
    print("\n" + table)

    for row in result.rows:
        # PA-CGA must improve on (or match) the Min-min seed everywhere
        assert row.pa_cga <= row.minmin * 1.0001, row
        # and stay above the LP bound (sanity of both sides)
        assert row.pa_cga >= row.lp_bound - 1e-6, row
    # aggregate: the metaheuristic closes most of the heuristic's gap
    mean_minmin = sum(r.minmin_gap for r in result.rows) / len(result.rows)
    assert result.mean_gap() < mean_minmin

"""Extension E4 — the weighted makespan+flowtime objective.

The cMA+LTH study (the paper's reference [20]) optimizes a weighted
combination of makespan and flowtime; this library supports the same
objective via ``CGAConfig(fitness="makespan+flowtime")``.  The bench
measures the trade: optimizing the combined objective should improve
flowtime at a modest makespan cost relative to the paper's
makespan-only configuration.
"""

from repro.cga import AsyncCGA, CGAConfig, StopCondition
from repro.etc import load_benchmark
from repro.experiments import ascii_table
from repro.scheduling import flowtime, makespan

from conftest import env_runs, save_artifact

INST = load_benchmark("u_i_hihi.0")
BUDGET = StopCondition(max_evaluations=4000)


def _run():
    n_runs = env_runs(3)
    out = {}
    for fitness in ("makespan", "makespan+flowtime"):
        ms, ft = [], []
        for seed in range(n_runs):
            config = CGAConfig(ls_iterations=5, fitness=fitness)
            res = AsyncCGA(INST, config, rng=seed, record_history=False).run(BUDGET)
            ms.append(makespan(INST, res.best_assignment))
            ft.append(flowtime(INST, res.best_assignment))
        out[fitness] = (sum(ms) / n_runs, sum(ft) / n_runs)
    return out


def test_weighted_objective_tradeoff(benchmark):
    """Combined objective buys flowtime without wrecking makespan."""
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = ascii_table(
        ["objective", "mean makespan", "mean flowtime"],
        [[k, f"{v[0]:,.0f}", f"{v[1]:,.0f}"] for k, v in out.items()],
    )
    save_artifact(
        "weighted_fitness.txt",
        f"E4: objective trade-off, u_i_hihi.0, {BUDGET.max_evaluations} evals\n\n"
        + table
        + "\n",
    )
    print("\n" + table)
    pure = out["makespan"]
    mixed = out["makespan+flowtime"]
    assert mixed[1] <= pure[1] * 1.02  # flowtime no worse (usually better)
    assert mixed[0] <= pure[0] * 1.15  # makespan cost bounded
"""Table 1 — configuration self-check and per-operator throughput.

Table 1 is the paper's parameterization, not a result; this bench (a)
asserts the default :class:`CGAConfig` matches it and records the
rendered table, and (b) measures the raw throughput of every operator
in the breeding loop with pytest-benchmark, which is what the virtual
cost model's ratios are grounded in.
"""

import numpy as np
import pytest

from repro import CGAConfig, load_benchmark
from repro.cga.crossover import child_with_ct, one_point, two_point
from repro.cga.local_search import h2ll
from repro.cga.mutation import move_mutation
from repro.cga.population import Population
from repro.cga.selection import best_two
from repro.scheduling.schedule import compute_completion_times

from conftest import save_artifact


@pytest.fixture(scope="module")
def inst():
    return load_benchmark("u_c_hihi.0")


@pytest.fixture(scope="module")
def state(inst):
    rng = np.random.default_rng(0)
    s = rng.integers(0, inst.nmachines, inst.ntasks).astype(np.int32)
    ct = compute_completion_times(inst, s)
    return s, ct, rng


def test_table1_configuration(benchmark):
    """Record Table 1 and check the defaults reproduce it."""
    config = CGAConfig(n_threads=3)
    text = config.describe()
    save_artifact("table1_configuration.txt", text + "\n")
    assert config.population_size == 256
    assert config.neighborhood == "l5"
    assert config.crossover == "tpx"
    assert config.local_search == "h2ll"
    benchmark(config.describe)


def test_throughput_selection_best2(benchmark, state):
    s, ct, rng = state
    fitness = rng.random(5)
    benchmark(best_two, fitness, rng)


def test_throughput_crossover_opx(benchmark, inst, state):
    s, ct, rng = state
    p2 = np.roll(s, 7)
    benchmark(lambda: child_with_ct(inst, s, ct, p2, one_point, rng))


def test_throughput_crossover_tpx(benchmark, inst, state):
    s, ct, rng = state
    p2 = np.roll(s, 7)
    benchmark(lambda: child_with_ct(inst, s, ct, p2, two_point, rng))


def test_throughput_mutation_move(benchmark, inst, state):
    s, ct, rng = state
    benchmark(lambda: move_mutation(s, ct, inst, rng))


@pytest.mark.parametrize("iters", [1, 5, 10])
def test_throughput_h2ll(benchmark, inst, state, iters):
    s, ct, rng = state
    benchmark(lambda: h2ll(s.copy(), ct.copy(), inst, rng, iters))


def test_throughput_population_evaluate_all(benchmark, inst):
    from repro.cga.grid import Grid2D

    pop = Population(inst, Grid2D(16, 16))
    pop.init_random(np.random.default_rng(0))
    benchmark(pop.evaluate_all)

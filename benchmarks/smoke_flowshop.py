#!/usr/bin/env python
"""CI flow-shop smoke test: the second workload stays end-to-end healthy.

Two floors on a generated Taillard-style instance (``fs50x10.0``,
deterministic — no file on disk):

1. **Quality** — the cGA (vectorized engine, NEH-seeded) must finish at
   least ``REPRO_SMOKE_FS_MIN_GAIN`` (default 1%) below the plain NEH
   constructive makespan.  NEH sits in the initial population, so merely
   matching it would mean the search did nothing.
2. **Throughput** — best of three runs must clear
   ``REPRO_SMOKE_FS_MIN_EVALS_S`` (default 1500 evals/s; loose because
   hosted runners vary widely in speed).

Usage: PYTHONPATH=src python benchmarks/smoke_flowshop.py
"""

from __future__ import annotations

import os
import sys

from repro import CGAConfig, StopCondition, VectorizedSyncCGA
from repro.problems.flowshop import flowshop_ct, load_flowshop_instance, neh_order

MIN_GAIN = float(os.environ.get("REPRO_SMOKE_FS_MIN_GAIN", "0.01"))
MIN_EVALS_S = float(os.environ.get("REPRO_SMOKE_FS_MIN_EVALS_S", "1500"))
INSTANCE = "fs50x10.0"
BUDGET = StopCondition(max_evaluations=256 * 200)
RUNS = 3


def main() -> int:
    inst = load_flowshop_instance(INSTANCE)
    neh_ms = float(flowshop_ct(inst, neh_order(inst)).max())

    cfg = CGAConfig(problem="flowshop", ls_iterations=5)
    best_ms = float("inf")
    best_rate = 0.0
    for seed in range(RUNS):
        res = VectorizedSyncCGA(inst, cfg, rng=seed, record_history=False).run(BUDGET)
        best_ms = min(best_ms, res.best_fitness)
        best_rate = max(best_rate, res.evaluations / res.elapsed_s)

    gain = 1.0 - best_ms / neh_ms
    print(f"instance    : {INSTANCE} ({inst.njobs} jobs x {inst.nmachines} machines)")
    print(f"NEH makespan: {neh_ms:>10,.0f}")
    print(f"cGA makespan: {best_ms:>10,.0f}  ({gain:+.1%} vs NEH, floor {MIN_GAIN:.1%})")
    print(f"throughput  : {best_rate:>10,.0f} evals/s (floor {MIN_EVALS_S:,.0f})")
    ok = True
    if gain < MIN_GAIN:
        print("FAIL: cGA did not improve on the NEH seed", file=sys.stderr)
        ok = False
    if best_rate < MIN_EVALS_S:
        print("FAIL: flow-shop batch kernels below the throughput floor", file=sys.stderr)
        ok = False
    if not ok:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
